#include "ir/builder.hpp"

#include <utility>

#include "common/error.hpp"
#include "ir/verifier.hpp"

namespace hlsprof::ir {

Type Val::type() const {
  HLSPROF_CHECK(valid(), "type() on invalid Val");
  return b_->type_of(id_);
}

Val VarHandle::get() const {
  HLSPROF_CHECK(b_ != nullptr, "VarHandle not bound");
  Op op;
  op.opcode = Opcode::var_read;
  op.type = type_;
  op.var = id_;
  return b_->emit(op);
}

void VarHandle::set(Val v) const {
  HLSPROF_CHECK(b_ != nullptr, "VarHandle not bound");
  HLSPROF_CHECK(v.valid(), "VarHandle::set with invalid value");
  HLSPROF_CHECK(v.type() == type_, "VarHandle::set type mismatch for var");
  Op op;
  op.opcode = Opcode::var_write;
  op.type = type_;
  op.var = id_;
  op.operands = {v.id()};
  b_->emit(op);
}

KernelBuilder::KernelBuilder(std::string name, int num_threads) {
  HLSPROF_CHECK(num_threads >= 1 && num_threads <= 64,
                "num_threads out of supported range [1,64]");
  k_.name = std::move(name);
  k_.num_threads = num_threads;
  region_stack_.push_back(&k_.body);
}

Type KernelBuilder::type_of(ValueId v) const { return k_.op(v).type; }

Val KernelBuilder::emit(Op op) {
  HLSPROF_CHECK(!finished_, "builder already finished");
  const auto id = static_cast<ValueId>(k_.ops.size());
  const bool has_value = produces_value(op.opcode);
  k_.ops.push_back(std::move(op));
  current().stmts.push_back(OpStmt{id});
  return has_value ? Val(this, id) : Val();
}

// ---- Arguments -----------------------------------------------------------

PtrHandle KernelBuilder::ptr_arg(const std::string& name, Type elem,
                                 MapDir map, std::int64_t count) {
  HLSPROF_CHECK(count > 0, "pointer arg must map at least one element");
  HLSPROF_CHECK(elem.lanes == 1, "pointer args are arrays of scalars");
  Arg a;
  a.name = name;
  a.elem_type = elem;
  a.is_pointer = true;
  a.map = map;
  a.count = count;
  k_.args.push_back(a);
  return PtrHandle{static_cast<ArgId>(k_.args.size() - 1), elem};
}

Val KernelBuilder::i32_arg(const std::string& name) {
  Arg a;
  a.name = name;
  a.elem_type = Type::i32();
  k_.args.push_back(a);
  Op op;
  op.opcode = Opcode::read_arg;
  op.type = a.elem_type;
  op.arg = static_cast<ArgId>(k_.args.size() - 1);
  return emit(op);
}

Val KernelBuilder::i64_arg(const std::string& name) {
  Arg a;
  a.name = name;
  a.elem_type = Type::i64();
  k_.args.push_back(a);
  Op op;
  op.opcode = Opcode::read_arg;
  op.type = a.elem_type;
  op.arg = static_cast<ArgId>(k_.args.size() - 1);
  return emit(op);
}

Val KernelBuilder::f32_arg(const std::string& name) {
  Arg a;
  a.name = name;
  a.elem_type = Type::f32();
  k_.args.push_back(a);
  Op op;
  op.opcode = Opcode::read_arg;
  op.type = a.elem_type;
  op.arg = static_cast<ArgId>(k_.args.size() - 1);
  return emit(op);
}

Val KernelBuilder::f64_arg(const std::string& name) {
  Arg a;
  a.name = name;
  a.elem_type = Type::f64();
  k_.args.push_back(a);
  Op op;
  op.opcode = Opcode::read_arg;
  op.type = a.elem_type;
  op.arg = static_cast<ArgId>(k_.args.size() - 1);
  return emit(op);
}

// ---- Constants and context ------------------------------------------------

Val KernelBuilder::c32(std::int64_t v) {
  Op op;
  op.opcode = Opcode::const_int;
  op.type = Type::i32();
  op.i_imm = v;
  return emit(op);
}

Val KernelBuilder::c64(std::int64_t v) {
  Op op;
  op.opcode = Opcode::const_int;
  op.type = Type::i64();
  op.i_imm = v;
  return emit(op);
}

Val KernelBuilder::cf32(double v) {
  Op op;
  op.opcode = Opcode::const_float;
  op.type = Type::f32();
  op.f_imm = v;
  return emit(op);
}

Val KernelBuilder::cf64(double v) {
  Op op;
  op.opcode = Opcode::const_float;
  op.type = Type::f64();
  op.f_imm = v;
  return emit(op);
}

Val KernelBuilder::thread_id() {
  Op op;
  op.opcode = Opcode::thread_id;
  op.type = Type::i32();
  return emit(op);
}

Val KernelBuilder::num_threads_val() {
  Op op;
  op.opcode = Opcode::num_threads;
  op.type = Type::i32();
  return emit(op);
}

// ---- Arithmetic -----------------------------------------------------------

void KernelBuilder::unify(Val& a, Val& b) {
  HLSPROF_CHECK(a.valid() && b.valid(), "operation on invalid Val");
  Type ta = a.type();
  Type tb = b.type();
  HLSPROF_CHECK(ta.scalar == tb.scalar,
                "operand scalar types differ (insert an explicit cast)");
  if (ta.lanes == tb.lanes) return;
  if (ta.lanes == 1) {
    a = broadcast(a, tb.lanes);
  } else if (tb.lanes == 1) {
    b = broadcast(b, ta.lanes);
  } else {
    fail("operand lane counts differ and neither is scalar");
  }
}

Val KernelBuilder::binary(Opcode int_op, Opcode float_op, Val a, Val b) {
  unify(a, b);
  Op op;
  op.opcode = a.type().is_float() ? float_op : int_op;
  op.type = a.type();
  op.operands = {a.id(), b.id()};
  return emit(op);
}

Val KernelBuilder::compare(Opcode opc, Val a, Val b) {
  unify(a, b);
  HLSPROF_CHECK(a.type().lanes == 1, "comparisons are scalar-only");
  Op op;
  op.opcode = opc;
  op.type = Type::i32();
  op.operands = {a.id(), b.id()};
  return emit(op);
}

Val KernelBuilder::add(Val a, Val b) {
  return binary(Opcode::add, Opcode::fadd, a, b);
}
Val KernelBuilder::sub(Val a, Val b) {
  return binary(Opcode::sub, Opcode::fsub, a, b);
}
Val KernelBuilder::mul(Val a, Val b) {
  return binary(Opcode::mul, Opcode::fmul, a, b);
}
Val KernelBuilder::div(Val a, Val b) {
  return binary(Opcode::divs, Opcode::fdiv, a, b);
}

Val KernelBuilder::rem(Val a, Val b) {
  HLSPROF_CHECK(a.valid() && b.valid() && a.type().is_int() &&
                    b.type().is_int(),
                "rem requires integer operands");
  return binary(Opcode::rems, Opcode::rems, a, b);
}

Val KernelBuilder::neg(Val a) {
  HLSPROF_CHECK(a.valid(), "neg on invalid Val");
  Op op;
  op.opcode = a.type().is_float() ? Opcode::fneg : Opcode::neg;
  op.type = a.type();
  op.operands = {a.id()};
  return emit(op);
}

Val KernelBuilder::band(Val a, Val b) {
  return binary(Opcode::and_, Opcode::and_, a, b);
}
Val KernelBuilder::bor(Val a, Val b) {
  return binary(Opcode::or_, Opcode::or_, a, b);
}
Val KernelBuilder::bxor(Val a, Val b) {
  return binary(Opcode::xor_, Opcode::xor_, a, b);
}
Val KernelBuilder::shl(Val a, Val b) {
  return binary(Opcode::shl, Opcode::shl, a, b);
}
Val KernelBuilder::ashr(Val a, Val b) {
  return binary(Opcode::ashr, Opcode::ashr, a, b);
}

Val KernelBuilder::lt(Val a, Val b) { return compare(Opcode::cmp_lt, a, b); }
Val KernelBuilder::le(Val a, Val b) { return compare(Opcode::cmp_le, a, b); }
Val KernelBuilder::gt(Val a, Val b) { return compare(Opcode::cmp_gt, a, b); }
Val KernelBuilder::ge(Val a, Val b) { return compare(Opcode::cmp_ge, a, b); }
Val KernelBuilder::eq(Val a, Val b) { return compare(Opcode::cmp_eq, a, b); }
Val KernelBuilder::ne(Val a, Val b) { return compare(Opcode::cmp_ne, a, b); }

Val KernelBuilder::select(Val cond, Val a, Val b) {
  HLSPROF_CHECK(cond.valid() && cond.type() == Type::i32(),
                "select condition must be scalar i32");
  unify(a, b);
  Op op;
  op.opcode = Opcode::select;
  op.type = a.type();
  op.operands = {cond.id(), a.id(), b.id()};
  return emit(op);
}

Val KernelBuilder::cast(Val v, Type to) {
  HLSPROF_CHECK(v.valid(), "cast on invalid Val");
  HLSPROF_CHECK(v.type().lanes == to.lanes, "cast cannot change lane count");
  if (v.type() == to) return v;
  Op op;
  op.opcode = Opcode::cast;
  op.type = to;
  op.operands = {v.id()};
  return emit(op);
}

// ---- Vector ops ------------------------------------------------------------

Val KernelBuilder::broadcast(Val scalar, int lanes) {
  HLSPROF_CHECK(scalar.valid() && scalar.type().lanes == 1,
                "broadcast source must be scalar");
  Op op;
  op.opcode = Opcode::broadcast;
  op.type = scalar.type().with_lanes(lanes);
  op.operands = {scalar.id()};
  return emit(op);
}

Val KernelBuilder::extract(Val vec, int lane) {
  HLSPROF_CHECK(vec.valid() && lane >= 0 && lane < vec.type().lanes,
                "extract lane out of range");
  Op op;
  op.opcode = Opcode::extract;
  op.type = vec.type().element();
  op.operands = {vec.id()};
  op.i_imm = lane;
  return emit(op);
}

Val KernelBuilder::insert(Val vec, Val scalar, int lane) {
  HLSPROF_CHECK(vec.valid() && scalar.valid(), "insert on invalid Val");
  HLSPROF_CHECK(lane >= 0 && lane < vec.type().lanes,
                "insert lane out of range");
  HLSPROF_CHECK(scalar.type() == vec.type().element(),
                "insert scalar type mismatch");
  Op op;
  op.opcode = Opcode::insert;
  op.type = vec.type();
  op.operands = {vec.id(), scalar.id()};
  op.i_imm = lane;
  return emit(op);
}

Val KernelBuilder::reduce_add(Val vec) {
  HLSPROF_CHECK(vec.valid() && vec.type().is_vector(),
                "reduce_add requires a vector");
  Op op;
  op.opcode = Opcode::reduce_add;
  op.type = vec.type().element();
  op.operands = {vec.id()};
  return emit(op);
}

// ---- Memory -----------------------------------------------------------------

Val KernelBuilder::load(PtrHandle p, Val index, int lanes) {
  HLSPROF_CHECK(p.id >= 0, "load from unbound pointer");
  HLSPROF_CHECK(index.valid() && index.type().is_int() &&
                    index.type().lanes == 1,
                "load index must be scalar integer");
  Op op;
  op.opcode = Opcode::load_ext;
  op.type = p.elem.with_lanes(lanes);
  op.operands = {index.id()};
  op.arg = p.id;
  return emit(op);
}

void KernelBuilder::store(PtrHandle p, Val index, Val value) {
  HLSPROF_CHECK(p.id >= 0, "store to unbound pointer");
  HLSPROF_CHECK(index.valid() && index.type().is_int() &&
                    index.type().lanes == 1,
                "store index must be scalar integer");
  HLSPROF_CHECK(value.valid() && value.type().scalar == p.elem.scalar,
                "store value scalar type mismatch");
  Op op;
  op.opcode = Opcode::store_ext;
  op.type = value.type();
  op.operands = {index.id(), value.id()};
  op.arg = p.id;
  emit(op);
}

LocalHandle KernelBuilder::local_array(const std::string& name, Scalar elem,
                                       std::int64_t size, int ports) {
  HLSPROF_CHECK(size > 0, "local array must have positive size");
  HLSPROF_CHECK(ports >= 1 && ports <= 4, "local array ports in [1,4]");
  LocalArray a;
  a.name = name;
  a.elem = elem;
  a.size = size;
  a.ports = ports;
  k_.local_arrays.push_back(a);
  return LocalHandle{static_cast<LocalArrayId>(k_.local_arrays.size() - 1),
                     elem};
}

Val KernelBuilder::load_local(LocalHandle a, Val index, int lanes) {
  HLSPROF_CHECK(a.id >= 0, "load from unbound local array");
  HLSPROF_CHECK(index.valid() && index.type().is_int() &&
                    index.type().lanes == 1,
                "local load index must be scalar integer");
  Op op;
  op.opcode = Opcode::load_local;
  op.type = Type::make(a.elem, lanes);
  op.operands = {index.id()};
  op.array = a.id;
  return emit(op);
}

void KernelBuilder::store_local(LocalHandle a, Val index, Val value) {
  HLSPROF_CHECK(a.id >= 0, "store to unbound local array");
  HLSPROF_CHECK(index.valid() && index.type().is_int() &&
                    index.type().lanes == 1,
                "local store index must be scalar integer");
  HLSPROF_CHECK(value.valid() && value.type().scalar == a.elem,
                "local store scalar type mismatch");
  Op op;
  op.opcode = Opcode::store_local;
  op.type = value.type();
  op.operands = {index.id(), value.id()};
  op.array = a.id;
  emit(op);
}

void KernelBuilder::preload(LocalHandle dst, Val dst_index, PtrHandle src,
                            Val src_index, Val count) {
  HLSPROF_CHECK(dst.id >= 0 && src.id >= 0, "preload with unbound handles");
  HLSPROF_CHECK(src.elem.scalar == dst.elem,
                "preload element type mismatch between source and "
                "destination");
  for (Val v : {dst_index, src_index, count}) {
    HLSPROF_CHECK(v.valid() && v.type().is_int() && v.type().lanes == 1,
                  "preload indices/count must be scalar integers");
  }
  Op op;
  op.opcode = Opcode::preload;
  op.type = src.elem;
  op.operands = {src_index.id(), dst_index.id(), count.id()};
  op.arg = src.id;
  op.array = dst.id;
  emit(op);
}

// ---- Vars ---------------------------------------------------------------------

VarHandle KernelBuilder::var(const std::string& name, Type type) {
  Var v;
  v.name = name;
  v.type = type;
  k_.vars.push_back(v);
  return VarHandle(this, static_cast<VarId>(k_.vars.size() - 1), type);
}

VarHandle KernelBuilder::var_init(const std::string& name, Val init) {
  HLSPROF_CHECK(init.valid(), "var_init with invalid value");
  VarHandle h = var(name, init.type());
  h.set(init);
  return h;
}

// ---- Control --------------------------------------------------------------------

void KernelBuilder::for_loop(const std::string& name, Val init, Val bound,
                             Val step, const std::function<void(Val)>& body,
                             LoopOpts opts) {
  HLSPROF_CHECK(init.valid() && bound.valid() && step.valid(),
                "for_loop bounds must be valid values");
  HLSPROF_CHECK(init.type().is_int() && init.type().lanes == 1,
                "induction values must be scalar integers");
  HLSPROF_CHECK(init.type() == bound.type() && init.type() == step.type(),
                "for_loop init/bound/step types must match");

  Var iv;
  iv.name = name;
  iv.type = init.type();
  k_.vars.push_back(iv);
  const auto iv_id = static_cast<VarId>(k_.vars.size() - 1);

  LoopStmt loop;
  loop.name = name;
  loop.induction = iv_id;
  loop.init = init.id();
  loop.bound = bound.id();
  loop.step = step.id();
  loop.pipeline = opts.pipeline;
  loop.trip_hint = opts.trip_hint;
  loop.id = k_.num_loops++;
  loop.body = std::make_unique<Region>();

  region_stack_.push_back(loop.body.get());
  // One var_read of the induction variable at the top of the body; the
  // closure receives its Val and may reuse it freely.
  Op rd;
  rd.opcode = Opcode::var_read;
  rd.type = iv.type;
  rd.var = iv_id;
  Val iv_val = emit(rd);
  body(iv_val);
  region_stack_.pop_back();

  current().stmts.push_back(std::move(loop));
}

void KernelBuilder::if_then(Val cond, const std::function<void()>& then_body) {
  if_then_else(cond, then_body, [] {});
}

void KernelBuilder::if_then_else(Val cond,
                                 const std::function<void()>& then_body,
                                 const std::function<void()>& else_body) {
  HLSPROF_CHECK(cond.valid() && cond.type() == Type::i32(),
                "if condition must be scalar i32");
  IfStmt s;
  s.cond = cond.id();
  s.then_body = std::make_unique<Region>();
  s.else_body = std::make_unique<Region>();

  region_stack_.push_back(s.then_body.get());
  then_body();
  region_stack_.pop_back();

  region_stack_.push_back(s.else_body.get());
  else_body();
  region_stack_.pop_back();

  current().stmts.push_back(std::move(s));
}

void KernelBuilder::critical(int lock_id, const std::function<void()>& body) {
  HLSPROF_CHECK(lock_id >= 0 && lock_id < 64, "lock id out of range");
  CriticalStmt s;
  s.lock_id = lock_id;
  s.body = std::make_unique<Region>();
  if (lock_id >= k_.num_locks) k_.num_locks = lock_id + 1;

  region_stack_.push_back(s.body.get());
  body();
  region_stack_.pop_back();

  current().stmts.push_back(std::move(s));
}

void KernelBuilder::concurrent(std::vector<std::function<void()>> branches,
                               bool user_asserted_independent) {
  HLSPROF_CHECK(branches.size() >= 2, "concurrent needs at least 2 branches");
  ConcurrentStmt s;
  s.user_asserted_independent = user_asserted_independent;
  for (const auto& fn : branches) {
    auto region = std::make_unique<Region>();
    region_stack_.push_back(region.get());
    fn();
    region_stack_.pop_back();
    s.branches.push_back(std::move(region));
  }
  current().stmts.push_back(std::move(s));
}

void KernelBuilder::barrier(int barrier_id) {
  current().stmts.push_back(BarrierStmt{barrier_id});
}

Kernel KernelBuilder::finish() && {
  HLSPROF_CHECK(!finished_, "finish() called twice");
  HLSPROF_CHECK(region_stack_.size() == 1, "unbalanced region nesting");
  finished_ = true;
  verify(k_);  // throws Error with a diagnostic on malformed IR
  return std::move(k_);
}

// ---- Operator sugar -------------------------------------------------------------

namespace {
KernelBuilder* need_builder(Val a, Val b = Val()) {
  KernelBuilder* bd = a.valid() ? a.builder() : b.builder();
  HLSPROF_CHECK(bd != nullptr, "operator on unbound Val");
  if (a.valid() && b.valid()) {
    HLSPROF_CHECK(a.builder() == b.builder(),
                  "operands belong to different builders");
  }
  return bd;
}

Val make_imm(KernelBuilder* bd, Type like, double v) {
  switch (like.scalar) {
    case Scalar::i32: return bd->c32(static_cast<std::int64_t>(v));
    case Scalar::i64: return bd->c64(static_cast<std::int64_t>(v));
    case Scalar::f32: return bd->cf32(v);
    case Scalar::f64: return bd->cf64(v);
  }
  fail("unreachable scalar kind");
}
}  // namespace

Val imm_like(Val like, double v) {
  return make_imm(need_builder(like), like.type().element(), v);
}

Val operator+(Val a, Val b) { return need_builder(a, b)->add(a, b); }
Val operator-(Val a, Val b) { return need_builder(a, b)->sub(a, b); }
Val operator*(Val a, Val b) { return need_builder(a, b)->mul(a, b); }
Val operator/(Val a, Val b) { return need_builder(a, b)->div(a, b); }
Val operator%(Val a, Val b) { return need_builder(a, b)->rem(a, b); }
Val operator-(Val a) { return need_builder(a)->neg(a); }
Val operator<(Val a, Val b) { return need_builder(a, b)->lt(a, b); }
Val operator<=(Val a, Val b) { return need_builder(a, b)->le(a, b); }
Val operator>(Val a, Val b) { return need_builder(a, b)->gt(a, b); }
Val operator>=(Val a, Val b) { return need_builder(a, b)->ge(a, b); }
Val operator==(Val a, Val b) { return need_builder(a, b)->eq(a, b); }
Val operator!=(Val a, Val b) { return need_builder(a, b)->ne(a, b); }

Val operator+(Val a, std::int64_t b) { return a + imm_like(a, double(b)); }
Val operator+(std::int64_t a, Val b) { return imm_like(b, double(a)) + b; }
Val operator-(Val a, std::int64_t b) { return a - imm_like(a, double(b)); }
Val operator*(Val a, std::int64_t b) { return a * imm_like(a, double(b)); }
Val operator*(std::int64_t a, Val b) { return imm_like(b, double(a)) * b; }
Val operator/(Val a, std::int64_t b) { return a / imm_like(a, double(b)); }
Val operator%(Val a, std::int64_t b) { return a % imm_like(a, double(b)); }
Val operator<(Val a, std::int64_t b) { return a < imm_like(a, double(b)); }
Val operator+(Val a, double b) { return a + imm_like(a, b); }
Val operator*(Val a, double b) { return a * imm_like(a, b); }

}  // namespace hlsprof::ir
