#include "ir/op.hpp"

#include "common/strings.hpp"

namespace hlsprof::ir {

std::string to_string(Scalar s) {
  switch (s) {
    case Scalar::i32: return "i32";
    case Scalar::i64: return "i64";
    case Scalar::f32: return "f32";
    case Scalar::f64: return "f64";
  }
  return "?";
}

std::string to_string(const Type& t) {
  if (t.lanes == 1) return to_string(t.scalar);
  return to_string(t.scalar) + "x" + std::to_string(t.lanes);
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::const_int: return "const_int";
    case Opcode::const_float: return "const_float";
    case Opcode::thread_id: return "thread_id";
    case Opcode::num_threads: return "num_threads";
    case Opcode::read_arg: return "read_arg";
    case Opcode::add: return "add";
    case Opcode::sub: return "sub";
    case Opcode::mul: return "mul";
    case Opcode::divs: return "divs";
    case Opcode::rems: return "rems";
    case Opcode::neg: return "neg";
    case Opcode::and_: return "and";
    case Opcode::or_: return "or";
    case Opcode::xor_: return "xor";
    case Opcode::shl: return "shl";
    case Opcode::ashr: return "ashr";
    case Opcode::cmp_lt: return "cmp_lt";
    case Opcode::cmp_le: return "cmp_le";
    case Opcode::cmp_gt: return "cmp_gt";
    case Opcode::cmp_ge: return "cmp_ge";
    case Opcode::cmp_eq: return "cmp_eq";
    case Opcode::cmp_ne: return "cmp_ne";
    case Opcode::select: return "select";
    case Opcode::fadd: return "fadd";
    case Opcode::fsub: return "fsub";
    case Opcode::fmul: return "fmul";
    case Opcode::fdiv: return "fdiv";
    case Opcode::fneg: return "fneg";
    case Opcode::cast: return "cast";
    case Opcode::broadcast: return "broadcast";
    case Opcode::extract: return "extract";
    case Opcode::insert: return "insert";
    case Opcode::reduce_add: return "reduce_add";
    case Opcode::load_ext: return "load_ext";
    case Opcode::store_ext: return "store_ext";
    case Opcode::load_local: return "load_local";
    case Opcode::store_local: return "store_local";
    case Opcode::var_read: return "var_read";
    case Opcode::var_write: return "var_write";
    case Opcode::preload: return "preload";
  }
  return "?";
}

bool produces_value(Opcode op) {
  switch (op) {
    case Opcode::store_ext:
    case Opcode::store_local:
    case Opcode::var_write:
    case Opcode::preload:
      return false;
    default:
      return true;
  }
}

bool is_vlo(Opcode op) {
  return op == Opcode::load_ext || op == Opcode::store_ext ||
         op == Opcode::preload;
}

}  // namespace hlsprof::ir
