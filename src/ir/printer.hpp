// Human-readable dump of kernel IR (for debugging, tests, and README
// examples). The format is stable enough for golden-substring tests but is
// not a parseable interchange format.
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace hlsprof::ir {

/// Multi-line textual rendering of the whole kernel.
std::string print(const Kernel& k);

}  // namespace hlsprof::ir
