// Embedded kernel-construction DSL. This plays the role of the paper's
// OpenMP 4.0 target-offloading frontend (§III-A): `KernelBuilder`
// corresponds to a `#pragma omp target parallel` region, pointer args carry
// map() clauses, `critical()` maps to the hardware semaphore, and vector
// loads/stores express the 128-bit VECTOR accesses of Figs. 4/5.
//
// Usage sketch (the naive GEMM of Fig. 3):
//
//   KernelBuilder kb("gemm_v1", /*num_threads=*/8);
//   auto A   = kb.ptr_arg("A", Type::f32(), MapDir::to, n * n);
//   auto C   = kb.ptr_arg("C", Type::f32(), MapDir::from, n * n);
//   Val dim  = kb.i32_arg("DIM");
//   Val tid  = kb.thread_id();
//   kb.for_loop("i", kb.c32(0), dim, kb.c32(1), [&](Val i) { ... });
//   Kernel k = std::move(kb).finish();
//
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace hlsprof::ir {

class KernelBuilder;

/// Lightweight SSA value handle tied to its builder. Copyable; all
/// arithmetic operators emit ops into the builder's current region.
class Val {
 public:
  Val() = default;
  Val(KernelBuilder* b, ValueId id) : b_(b), id_(id) {}

  bool valid() const { return b_ != nullptr && id_ != kNoValue; }
  ValueId id() const { return id_; }
  KernelBuilder* builder() const { return b_; }
  Type type() const;

 private:
  KernelBuilder* b_ = nullptr;
  ValueId id_ = kNoValue;
};

/// Handle for an external-memory pointer argument.
struct PtrHandle {
  ArgId id = -1;
  Type elem;
};

/// Handle for a per-thread local (BRAM) array.
struct LocalHandle {
  LocalArrayId id = -1;
  Scalar elem = Scalar::f32;
};

/// Handle for a mutable per-thread scalar register.
class VarHandle {
 public:
  VarHandle() = default;
  VarHandle(KernelBuilder* b, VarId id, Type type)
      : b_(b), id_(id), type_(type) {}

  /// Emit a read of the current value.
  Val get() const;
  /// Emit a write.
  void set(Val v) const;
  VarId id() const { return id_; }
  Type type() const { return type_; }

 private:
  KernelBuilder* b_ = nullptr;
  VarId id_ = -1;
  Type type_;
};

/// Optional per-loop attributes.
struct LoopOpts {
  bool pipeline = true;        // candidate for pipelined scheduling
  std::int64_t trip_hint = -1; // static trip count, if known
};

class KernelBuilder {
 public:
  KernelBuilder(std::string name, int num_threads);

  KernelBuilder(const KernelBuilder&) = delete;
  KernelBuilder& operator=(const KernelBuilder&) = delete;

  // ---- Arguments -------------------------------------------------------
  PtrHandle ptr_arg(const std::string& name, Type elem, MapDir map,
                    std::int64_t count);
  Val i32_arg(const std::string& name);
  Val i64_arg(const std::string& name);
  Val f32_arg(const std::string& name);
  Val f64_arg(const std::string& name);

  // ---- Constants and thread context ------------------------------------
  Val c32(std::int64_t v);
  Val c64(std::int64_t v);
  Val cf32(double v);
  Val cf64(double v);
  Val thread_id();
  Val num_threads_val();

  // ---- Arithmetic (type-directed: float types emit f-ops) --------------
  Val add(Val a, Val b);
  Val sub(Val a, Val b);
  Val mul(Val a, Val b);
  Val div(Val a, Val b);
  Val rem(Val a, Val b);
  Val neg(Val a);
  Val band(Val a, Val b);
  Val bor(Val a, Val b);
  Val bxor(Val a, Val b);
  Val shl(Val a, Val b);
  Val ashr(Val a, Val b);
  Val lt(Val a, Val b);
  Val le(Val a, Val b);
  Val gt(Val a, Val b);
  Val ge(Val a, Val b);
  Val eq(Val a, Val b);
  Val ne(Val a, Val b);
  Val select(Val cond, Val a, Val b);
  Val cast(Val v, Type to);
  Val to_f32(Val v) { return cast(v, Type::f32(v.type().lanes)); }
  Val to_i32(Val v) { return cast(v, Type::i32(v.type().lanes)); }

  // ---- Vector ops -------------------------------------------------------
  Val broadcast(Val scalar, int lanes);
  Val extract(Val vec, int lane);
  Val insert(Val vec, Val scalar, int lane);
  Val reduce_add(Val vec);

  // ---- Memory -----------------------------------------------------------
  /// External (DRAM) load of `lanes` consecutive elements at `index`.
  Val load(PtrHandle p, Val index, int lanes = 1);
  void store(PtrHandle p, Val index, Val value);

  LocalHandle local_array(const std::string& name, Scalar elem,
                          std::int64_t size, int ports = 2);
  Val load_local(LocalHandle a, Val index, int lanes = 1);
  void store_local(LocalHandle a, Val index, Val value);

  /// DMA burst through the preloader block (paper Fig. 1): copy `count`
  /// consecutive elements from external `src` at `src_index` into local
  /// array `dst` at `dst_index`. Element types must match.
  void preload(LocalHandle dst, Val dst_index, PtrHandle src, Val src_index,
               Val count);

  // ---- Mutable registers --------------------------------------------------
  VarHandle var(const std::string& name, Type type);
  VarHandle var_init(const std::string& name, Val init);

  // ---- Control ------------------------------------------------------------
  /// for (iv = init; iv < bound; iv += step) body(iv)
  void for_loop(const std::string& name, Val init, Val bound, Val step,
                const std::function<void(Val)>& body,
                LoopOpts opts = LoopOpts{});
  void if_then(Val cond, const std::function<void()>& then_body);
  void if_then_else(Val cond, const std::function<void()>& then_body,
                    const std::function<void()>& else_body);
  /// #pragma omp critical — body guarded by hardware semaphore `lock_id`.
  void critical(int lock_id, const std::function<void()>& body);
  /// Datapath-concurrent branches (see ConcurrentStmt).
  void concurrent(std::vector<std::function<void()>> branches,
                  bool user_asserted_independent);
  /// #pragma omp barrier.
  void barrier(int barrier_id = 0);

  /// Finalize: verifies and returns the kernel. The builder is consumed.
  Kernel finish() &&;

  // ---- Introspection (used by Val/VarHandle and the verifier) ----------
  const Kernel& kernel() const { return k_; }
  Type type_of(ValueId v) const;

 private:
  friend class Val;
  friend class VarHandle;

  Val emit(Op op);
  Region& current() { return *region_stack_.back(); }
  /// Insert implicit broadcasts/asserts so a/b agree in lanes and scalar.
  void unify(Val& a, Val& b);
  Val binary(Opcode int_op, Opcode float_op, Val a, Val b);
  Val compare(Opcode op, Val a, Val b);

  Kernel k_;
  std::vector<Region*> region_stack_;
  bool finished_ = false;
};

// Operator sugar on Val (plus mixed Val/immediate forms). Immediates adopt
// the other operand's scalar type.
Val operator+(Val a, Val b);
Val operator-(Val a, Val b);
Val operator*(Val a, Val b);
Val operator/(Val a, Val b);
Val operator%(Val a, Val b);
Val operator-(Val a);
Val operator<(Val a, Val b);
Val operator<=(Val a, Val b);
Val operator>(Val a, Val b);
Val operator>=(Val a, Val b);
Val operator==(Val a, Val b);
Val operator!=(Val a, Val b);

Val operator+(Val a, std::int64_t b);
Val operator+(std::int64_t a, Val b);
Val operator-(Val a, std::int64_t b);
Val operator*(Val a, std::int64_t b);
Val operator*(std::int64_t a, Val b);
Val operator/(Val a, std::int64_t b);
Val operator%(Val a, std::int64_t b);
Val operator<(Val a, std::int64_t b);
Val operator+(Val a, double b);
Val operator*(Val a, double b);

/// Immediate of the same scalar type as `like`.
Val imm_like(Val like, double v);

}  // namespace hlsprof::ir
