// Operation set of the kernel IR. The IR is SSA-like: every op produces at
// most one value; mutable state lives in explicit Vars (loop-carried
// scalars) and local arrays, mirroring what Nymble's datapath registers and
// BRAMs hold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace hlsprof::ir {

/// Index of an op in the kernel arena; ops that produce a value are referred
/// to by their index.
using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

/// Index of a kernel argument (scalar or pointer).
using ArgId = std::int32_t;
/// Index of a mutable per-thread scalar register (loop-carried variable).
using VarId = std::int32_t;
/// Index of a per-thread local (BRAM) array.
using LocalArrayId = std::int32_t;

enum class Opcode : std::uint8_t {
  // Constants and kernel context.
  const_int,    // i_imm
  const_float,  // f_imm
  thread_id,    // omp_get_thread_num()
  num_threads,  // omp_get_num_threads()
  read_arg,     // scalar kernel argument (arg)

  // Integer arithmetic / logic (operands and result share the type).
  add, sub, mul, divs, rems, neg,
  and_, or_, xor_, shl, ashr,
  cmp_lt, cmp_le, cmp_gt, cmp_ge, cmp_eq, cmp_ne,  // result i32 0/1
  select,  // (cond, a, b) — cond scalar i32, a/b of result type

  // Floating point.
  fadd, fsub, fmul, fdiv, fneg,

  // Conversions (between result type and operand type, lane-wise).
  cast,

  // Vector shuffles.
  broadcast,    // scalar -> all lanes
  extract,      // (vec) lane index in i_imm -> scalar
  insert,       // (vec, scalar) lane index in i_imm -> vec
  reduce_add,   // (vec) -> scalar sum of lanes

  // Memory. Indices are in *elements* of the pointee scalar type; a vector
  // load/store of L lanes moves L consecutive elements.
  load_ext,     // (index) from pointer arg `arg`; VLO (variable latency)
  store_ext,    // (index, value) to pointer arg `arg`; VLO
  load_local,   // (index) from local array `array`
  store_local,  // (index, value) to local array `array`
  // DMA burst through the preloader block (paper Fig. 1): copy
  // (src_index, dst_index, count) elements from pointer arg `arg` into
  // local array `array`. Uses the preloader's own bus master, so it
  // bursts at line granularity instead of element-wise thread-port
  // accesses. VLO.
  preload,

  // Mutable scalar registers.
  var_read,     // read Var `var`
  var_write,    // (value) write Var `var`
};

const char* opcode_name(Opcode op);

/// True for opcodes whose result is a usable SSA value.
bool produces_value(Opcode op);

/// True for variable-latency operations (external memory), which the
/// Nymble-MT controller must be able to stall on (paper §III-B).
bool is_vlo(Opcode op);

/// One IR operation. Payload fields are meaningful only for the opcodes
/// that use them (documented next to each opcode above).
struct Op {
  Opcode opcode = Opcode::const_int;
  Type type;                       // result type (stores: stored value type)
  std::vector<ValueId> operands;
  std::int64_t i_imm = 0;
  double f_imm = 0.0;
  ArgId arg = -1;
  VarId var = -1;
  LocalArrayId array = -1;
};

}  // namespace hlsprof::ir
