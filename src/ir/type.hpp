// Value types of the kernel IR. Vectors model the paper's 128-bit VECTOR
// accesses (Figs. 4/5) as multi-lane scalar types.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace hlsprof::ir {

enum class Scalar : std::uint8_t { i32, i64, f32, f64 };

inline constexpr int kMaxLanes = 16;

/// A (possibly vector) value type: `lanes` copies of `scalar`.
struct Type {
  Scalar scalar = Scalar::i32;
  std::uint16_t lanes = 1;

  static Type i32(int lanes = 1) { return make(Scalar::i32, lanes); }
  static Type i64(int lanes = 1) { return make(Scalar::i64, lanes); }
  static Type f32(int lanes = 1) { return make(Scalar::f32, lanes); }
  static Type f64(int lanes = 1) { return make(Scalar::f64, lanes); }

  static Type make(Scalar s, int lanes) {
    HLSPROF_CHECK(lanes >= 1 && lanes <= kMaxLanes, "lane count out of range");
    return Type{s, static_cast<std::uint16_t>(lanes)};
  }

  bool is_float() const {
    return scalar == Scalar::f32 || scalar == Scalar::f64;
  }
  bool is_int() const { return !is_float(); }
  bool is_vector() const { return lanes > 1; }

  /// Size of one lane in bytes.
  int scalar_bytes() const {
    switch (scalar) {
      case Scalar::i32:
      case Scalar::f32:
        return 4;
      case Scalar::i64:
      case Scalar::f64:
        return 8;
    }
    return 4;
  }

  /// Total size in bytes (lanes * lane size).
  int bytes() const { return scalar_bytes() * lanes; }

  Type with_lanes(int n) const { return make(scalar, n); }
  Type element() const { return Type{scalar, 1}; }

  bool operator==(const Type& o) const {
    return scalar == o.scalar && lanes == o.lanes;
  }
  bool operator!=(const Type& o) const { return !(*this == o); }
};

std::string to_string(Scalar s);
std::string to_string(const Type& t);

}  // namespace hlsprof::ir
