#include "ir/printer.hpp"

#include "common/strings.hpp"

namespace hlsprof::ir {

namespace {

class Printer {
 public:
  explicit Printer(const Kernel& k) : k_(k) {}

  std::string run() {
    out_ += strf("kernel %s(num_threads=%d) {\n", k_.name.c_str(),
                 k_.num_threads);
    indent_ = 1;
    for (std::size_t i = 0; i < k_.args.size(); ++i) {
      const Arg& a = k_.args[i];
      if (a.is_pointer) {
        line(strf("arg @%zu %s: %s* map(%s) [%lld]", i, a.name.c_str(),
                  to_string(a.elem_type).c_str(), map_dir_name(a.map),
                  static_cast<long long>(a.count)));
      } else {
        line(strf("arg @%zu %s: %s", i, a.name.c_str(),
                  to_string(a.elem_type).c_str()));
      }
    }
    for (std::size_t i = 0; i < k_.local_arrays.size(); ++i) {
      const LocalArray& a = k_.local_arrays[i];
      line(strf("local $%zu %s: %s[%lld] ports=%d", i, a.name.c_str(),
                to_string(a.elem).c_str(), static_cast<long long>(a.size),
                a.ports));
    }
    region(k_.body);
    indent_ = 0;
    out_ += "}\n";
    return std::move(out_);
  }

 private:
  void line(const std::string& s) {
    out_.append(static_cast<std::size_t>(indent_) * 2, ' ');
    out_ += s;
    out_ += '\n';
  }

  std::string vname(ValueId v) const { return strf("%%%d", v); }

  void region(const Region& r) {
    for (const Stmt& s : r.stmts) {
      if (const auto* os = std::get_if<OpStmt>(&s)) {
        op_line(os->op);
      } else if (const auto* loop = std::get_if<LoopStmt>(&s)) {
        line(strf("for %s [loop %d, var v%d] = %s; < %s; += %s %s{",
                  loop->name.c_str(), loop->id, loop->induction,
                  vname(loop->init).c_str(), vname(loop->bound).c_str(),
                  vname(loop->step).c_str(),
                  loop->pipeline ? "pipeline " : ""));
        ++indent_;
        region(*loop->body);
        --indent_;
        line("}");
      } else if (const auto* iff = std::get_if<IfStmt>(&s)) {
        line(strf("if %s {", vname(iff->cond).c_str()));
        ++indent_;
        region(*iff->then_body);
        --indent_;
        if (!iff->else_body->stmts.empty()) {
          line("} else {");
          ++indent_;
          region(*iff->else_body);
          --indent_;
        }
        line("}");
      } else if (const auto* crit = std::get_if<CriticalStmt>(&s)) {
        line(strf("critical(lock=%d) {", crit->lock_id));
        ++indent_;
        region(*crit->body);
        --indent_;
        line("}");
      } else if (const auto* con = std::get_if<ConcurrentStmt>(&s)) {
        line(strf("concurrent%s {",
                  con->user_asserted_independent ? " [independent]" : ""));
        for (std::size_t i = 0; i < con->branches.size(); ++i) {
          ++indent_;
          line(strf("branch %zu:", i));
          ++indent_;
          region(*con->branches[i]);
          indent_ -= 2;
        }
        line("}");
      } else if (const auto* bar = std::get_if<BarrierStmt>(&s)) {
        line(strf("barrier(%d)", bar->barrier_id));
      }
    }
  }

  void op_line(ValueId id) {
    const Op& op = k_.op(id);
    std::string rhs = opcode_name(op.opcode);
    switch (op.opcode) {
      case Opcode::const_int:
        rhs += strf(" %lld", static_cast<long long>(op.i_imm));
        break;
      case Opcode::const_float:
        rhs += strf(" %g", op.f_imm);
        break;
      case Opcode::read_arg:
        rhs += strf(" @%d(%s)", op.arg,
                    k_.args[static_cast<std::size_t>(op.arg)].name.c_str());
        break;
      case Opcode::load_ext:
      case Opcode::store_ext:
        rhs += strf(" @%d(%s)", op.arg,
                    k_.args[static_cast<std::size_t>(op.arg)].name.c_str());
        break;
      case Opcode::preload:
        rhs += strf(" @%d(%s) -> $%d(%s)", op.arg,
                    k_.args[static_cast<std::size_t>(op.arg)].name.c_str(),
                    op.array,
                    k_.local_arrays[static_cast<std::size_t>(op.array)]
                        .name.c_str());
        break;
      case Opcode::load_local:
      case Opcode::store_local:
        rhs += strf(
            " $%d(%s)", op.array,
            k_.local_arrays[static_cast<std::size_t>(op.array)].name.c_str());
        break;
      case Opcode::var_read:
      case Opcode::var_write:
        rhs += strf(" v%d(%s)", op.var,
                    k_.vars[static_cast<std::size_t>(op.var)].name.c_str());
        break;
      case Opcode::extract:
      case Opcode::insert:
        rhs += strf(" lane=%lld", static_cast<long long>(op.i_imm));
        break;
      default:
        break;
    }
    for (ValueId o : op.operands) rhs += " " + vname(o);
    if (produces_value(op.opcode)) {
      line(strf("%s: %s = %s", vname(id).c_str(),
                to_string(op.type).c_str(), rhs.c_str()));
    } else {
      line(rhs);
    }
  }

  const Kernel& k_;
  std::string out_;
  int indent_ = 0;
};

}  // namespace

std::string print(const Kernel& k) { return Printer(k).run(); }

}  // namespace hlsprof::ir
