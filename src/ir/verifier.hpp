// Structural and type verification of kernel IR. Run automatically by
// KernelBuilder::finish(); also usable on hand-built kernels in tests.
#pragma once

#include "ir/kernel.hpp"

namespace hlsprof::ir {

/// Throws hlsprof::Error with a diagnostic message if the kernel is
/// malformed: use-before-def, out-of-scope uses, bad operand counts or
/// types, dangling arg/var/array references, or stores appearing as values.
void verify(const Kernel& k);

}  // namespace hlsprof::ir
