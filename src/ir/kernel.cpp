#include "ir/kernel.hpp"

#include "common/error.hpp"

namespace hlsprof::ir {

const char* map_dir_name(MapDir d) {
  switch (d) {
    case MapDir::to: return "to";
    case MapDir::from: return "from";
    case MapDir::tofrom: return "tofrom";
    case MapDir::alloc: return "alloc";
  }
  return "?";
}

const Op& Kernel::op(ValueId v) const {
  HLSPROF_CHECK(v >= 0 && static_cast<std::size_t>(v) < ops.size(),
                "ValueId out of range");
  return ops[static_cast<std::size_t>(v)];
}

Op& Kernel::op(ValueId v) {
  HLSPROF_CHECK(v >= 0 && static_cast<std::size_t>(v) < ops.size(),
                "ValueId out of range");
  return ops[static_cast<std::size_t>(v)];
}

void for_each_region(const Region& r,
                     const std::function<void(const Region&)>& fn) {
  fn(r);
  for (const Stmt& s : r.stmts) {
    if (const auto* loop = std::get_if<LoopStmt>(&s)) {
      for_each_region(*loop->body, fn);
    } else if (const auto* iff = std::get_if<IfStmt>(&s)) {
      for_each_region(*iff->then_body, fn);
      for_each_region(*iff->else_body, fn);
    } else if (const auto* crit = std::get_if<CriticalStmt>(&s)) {
      for_each_region(*crit->body, fn);
    } else if (const auto* con = std::get_if<ConcurrentStmt>(&s)) {
      for (const auto& b : con->branches) for_each_region(*b, fn);
    }
  }
}

}  // namespace hlsprof::ir
