// HLSProf public API façade: compile a kernel, run it with or without the
// embedded profiling unit, and get back cycle counts plus the decoded
// Paraver-ready timeline. Everything underneath (IR builder, HLS
// scheduler, simulator, tracer, Paraver writers) is also public for
// advanced use; this header is the 90% path.
//
//   ir::Kernel k = workloads::gemm_naive(cfg);
//   core::Session s(core::compile(std::move(k)));
//   s.sim().bind_f32("A", a); ... s.sim().set_arg("DIM", 512);
//   core::RunResult r = s.run();
//   paraver::write_paraver(r.timeline, "gemm", "out/gemm_v1");
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "hls/compiler.hpp"
#include "hls/design.hpp"
#include "profiling/config.hpp"
#include "profiling/overhead.hpp"
#include "profiling/unit.hpp"
#include "sim/simulator.hpp"
#include "trace/timed_trace.hpp"

namespace hlsprof::core {

/// Compile a kernel into an accelerator design (see hls::compile).
inline hls::Design compile(ir::Kernel k,
                           const hls::HlsOptions& opts = hls::HlsOptions{}) {
  return hls::compile(std::move(k), opts);
}

/// Compile straight into shared ownership — the form to use when several
/// sessions (or the batch runner's design cache) run the same design.
inline std::shared_ptr<const hls::Design> compile_shared(
    ir::Kernel k, const hls::HlsOptions& opts = hls::HlsOptions{}) {
  return std::make_shared<const hls::Design>(hls::compile(std::move(k), opts));
}

struct RunOptions {
  /// Simulation runs on the fast path (direct dispatch + batched memory
  /// streams) by default; set `sim.reference_event_loop` to use the
  /// original event loop — cycle-exact with the fast path and kept as
  /// the verification oracle (DESIGN.md §6e, docs/PERF.md). Set
  /// `sim.fast_forward` for the opt-in approximate tier that jumps over
  /// steady-state memory-bound loop phases (DESIGN.md §6j) — outputs
  /// are then not meaningful, so pair it with disabled verification.
  sim::SimParams sim;
  profiling::ProfilingConfig profiling;
  bool enable_profiling = true;
  std::size_t mem_capacity = std::size_t{64} << 20;
  /// Optional live observer of the decoded record stream (e.g.
  /// live::LiveMetrics / live::LiveTimelineView). When set, every record
  /// is teed to it *after* the canonical TimedTraceBuilder sees it, so
  /// the timeline — and therefore report and Paraver bytes — is
  /// unchanged whether a sink is attached or not. Null (the default)
  /// costs a single branch per run. Must outlive run(); ignored when
  /// profiling is disabled.
  trace::RecordSink* live_sink = nullptr;
};

struct RunResult {
  sim::SimResult sim;
  /// Timeline reconstructed by streaming every flush burst through
  /// trace::StreamingDecoder → trace::TimedTraceBuilder as the run
  /// executes; empty (num_threads == 0) when profiling was disabled.
  trace::TimedTrace timeline;
  bool has_trace = false;
  // Tracer statistics (zero when profiling was disabled).
  long long state_records = 0;
  long long event_records = 0;
  long long flush_bursts = 0;
  std::size_t trace_bytes = 0;
  /// Largest flush burst the streaming pipeline had resident at once —
  /// the peak host-side trace memory of the run. Bounded by
  /// `profiling.buffer_lines * trace::kLineBytes` regardless of how long
  /// the run was or how many bytes the trace totalled.
  std::size_t peak_trace_buffer_bytes = 0;
};

/// One kernel launch: owns the simulator and (optionally) the profiling
/// unit wired into it.
///
/// The session *owns* its design (shared ownership), so the documented
/// pattern of constructing from a temporary —
/// `core::Session s(core::compile(std::move(k)))` — is safe, and the
/// runner's design cache can hand the same compiled design to many
/// concurrent sessions without copies.
class Session {
 public:
  /// Takes ownership of the design (designs are move-only — the kernel's
  /// control tree holds unique_ptr regions). To run one design in several
  /// sessions, compile with compile_shared() and pass the shared_ptr.
  explicit Session(hls::Design&& design, RunOptions opts = RunOptions{})
      : Session(std::make_shared<const hls::Design>(std::move(design)),
                std::move(opts)) {}

  /// Shares an already-compiled design (no copy) — the cache-hit path.
  explicit Session(std::shared_ptr<const hls::Design> design,
                   RunOptions opts = RunOptions{})
      : design_(std::move(design)),
        opts_(opts),
        sim_(checked(design_), opts.sim, opts.mem_capacity) {
    if (opts_.enable_profiling) {
      unit_ = std::make_unique<profiling::ProfilingUnit>(
          *design_, opts_.profiling, sim_.memory());
    }
  }

  /// Bind buffers / scalar args here before run().
  sim::Simulator& sim() { return sim_; }
  const hls::Design& design() const { return *design_; }
  const std::shared_ptr<const hls::Design>& design_ptr() const {
    return design_;
  }
  const profiling::ProfilingUnit* unit() const { return unit_.get(); }

  RunResult run() {
    RunResult r;
    if (unit_ == nullptr) {
      r.sim = sim_.run(nullptr);
      return r;
    }
    // Streaming trace pipeline: every flush burst is decoded and folded
    // into the timeline as it lands in DRAM, so the host never holds more
    // than one burst of raw trace — trace size no longer bounds job
    // memory, and the DRAM trace region acts as a ring instead of
    // overflowing. The burst-by-burst decode yields byte-identical
    // timelines to the post-run batch path (unit()->timeline()), which
    // remains available while the ring has not wrapped.
    trace::TimedTraceBuilder builder(design_->kernel.num_threads,
                                     opts_.profiling.sampling_period);
    // Optional live observer: tee the decoded records, builder first, so
    // canonical output is byte-identical with the sink on or off.
    std::optional<trace::TeeRecordSink> tee;
    trace::RecordSink* sink = &builder;
    if (opts_.live_sink != nullptr) {
      sink = &tee.emplace(builder, *opts_.live_sink);
    }
    trace::StreamingDecoder decoder(design_->kernel.num_threads, *sink);
    unit_->set_flush_sink(&decoder);
    const SinkGuard guard{unit_.get()};  // detach even if the run throws
    r.sim = sim_.run(unit_.get());
    decoder.finish();
    r.timeline = builder.finish(unit_->run_end());
    r.has_trace = true;
    // Extension beyond the paper (its multi-FPGA future work, first
    // step): host<->device map() transfers become Paraver communication
    // records anchored on thread 0.
    for (const sim::HostTransfer& t : r.sim.transfers) {
      r.timeline.comms.push_back(trace::CommRecord{
          0, t.begin, t.end, t.bytes,
          t.to_device ? trace::kCommTagToDevice
                      : trace::kCommTagFromDevice});
    }
    r.state_records = unit_->state_records();
    r.event_records = unit_->event_records();
    r.flush_bursts = unit_->flush_bursts();
    r.trace_bytes = unit_->trace_bytes_written();
    r.peak_trace_buffer_bytes = unit_->peak_burst_bytes();
    return r;
  }

  /// Hardware cost of the profiling configuration on this design.
  profiling::ProfilingOverhead overhead() const {
    return profiling::estimate_overhead(*design_, opts_.profiling);
  }

 private:
  /// Detaches the run-local flush sink from the unit on scope exit, so
  /// the unit never holds a dangling sink pointer after a throwing run.
  struct SinkGuard {
    profiling::ProfilingUnit* unit;
    ~SinkGuard() { unit->set_flush_sink(nullptr); }
  };

  static const hls::Design& checked(
      const std::shared_ptr<const hls::Design>& p) {
    HLSPROF_CHECK(p != nullptr, "Session: null design");
    return *p;
  }

  std::shared_ptr<const hls::Design> design_;
  RunOptions opts_;
  sim::Simulator sim_;
  std::unique_ptr<profiling::ProfilingUnit> unit_;
};

}  // namespace hlsprof::core
