#include "runner/report.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"

namespace hlsprof::runner {

namespace {

void job_json(JsonWriter& w, const JobResult& j, bool canonical) {
  w.begin_object();
  w.field("index", j.index);
  w.field("name", j.name);
  w.field("status", job_status_name(j.status));
  if (!j.error.empty()) w.field("error", j.error);
  w.field("seed", j.seed);
  w.field("design_key", hex_digest(j.design_key));
  if (!canonical) {
    w.field("cache_hit", j.cache_hit);
    w.field("wall_ms", j.wall_ms);
  }
  w.key("design").begin_object();
  w.field("fmax_mhz", j.fmax_mhz);
  w.field("alm", j.alm);
  w.field("bram_bits", j.bram_bits);
  w.field("num_threads", j.num_threads);
  w.end_object();
  w.key("run").begin_object();
  w.field("total_cycles", j.total_cycles);
  w.field("kernel_cycles", j.kernel_cycles);
  w.field("stall_cycles", j.stall_cycles);
  w.field("fp_ops", j.fp_ops);
  w.field("gflops", j.gflops);
  w.field("row_hit_rate", j.row_hit_rate);
  w.end_object();
  w.key("trace").begin_object();
  w.field("has_trace", j.has_trace);
  w.field("state_idle", j.state_idle);
  w.field("state_running", j.state_running);
  w.field("state_critical", j.state_critical);
  w.field("state_spinning", j.state_spinning);
  w.field("state_records", j.state_records);
  w.field("event_records", j.event_records);
  w.field("flush_bursts", j.flush_bursts);
  w.field("trace_bytes", j.trace_bytes);
  w.field("peak_trace_buffer_bytes", j.peak_trace_buffer_bytes);
  w.field("overhead_alm_pct", j.overhead_alm_pct);
  w.field("overhead_register_pct", j.overhead_register_pct);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string report_json(const BatchResult& result,
                        const ReportOptions& options) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "hlsprof-batch-report");
  w.field("schema_version", 1);
  if (!options.label.empty()) w.field("label", options.label);
  w.field("num_jobs", std::int64_t(result.jobs.size()));
  w.field("ok", result.count(JobStatus::ok));
  w.field("failed", result.count(JobStatus::failed));
  w.field("timed_out", result.count(JobStatus::timed_out));
  w.key("cache").begin_object();
  w.field("hits", result.cache_hits);
  w.field("misses", result.cache_misses);
  w.end_object();
  if (!options.canonical) {
    w.field("workers", result.workers);
    w.field("wall_ms", result.wall_ms);
  }
  w.key("jobs").begin_array();
  for (const JobResult& j : result.jobs) job_json(w, j, options.canonical);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string report_csv(const BatchResult& result,
                       const ReportOptions& options) {
  std::string out =
      "index,name,status,seed,design_key,fmax_mhz,num_threads,total_cycles,"
      "kernel_cycles,stall_cycles,fp_ops,gflops,row_hit_rate,state_idle,"
      "state_running,state_critical,state_spinning,state_records,"
      "event_records,flush_bursts,trace_bytes,peak_trace_buffer_bytes,"
      "overhead_alm_pct,overhead_register_pct";
  if (!options.canonical) out += ",cache_hit,wall_ms";
  out += "\n";
  for (const JobResult& j : result.jobs) {
    // Job names come from user manifests; quote so commas cannot break
    // the column structure.
    std::string name = j.name;
    if (name.find_first_of(",\"") != std::string::npos) {
      std::string quoted = "\"";
      for (char c : name) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      name = quoted;
    }
    out += strf("%d,%s,%s,%llu,%s,%.17g,%d,%llu,%llu,%llu,%lld,%.17g,%.17g,"
                "%.17g,%.17g,%.17g,%.17g,%lld,%lld,%lld,%llu,%llu,%.17g,"
                "%.17g",
                j.index, name.c_str(), job_status_name(j.status),
                (unsigned long long)j.seed, hex_digest(j.design_key).c_str(),
                j.fmax_mhz, j.num_threads,
                (unsigned long long)j.total_cycles,
                (unsigned long long)j.kernel_cycles,
                (unsigned long long)j.stall_cycles, j.fp_ops, j.gflops,
                j.row_hit_rate, j.state_idle, j.state_running,
                j.state_critical, j.state_spinning, j.state_records,
                j.event_records, j.flush_bursts,
                (unsigned long long)j.trace_bytes,
                (unsigned long long)j.peak_trace_buffer_bytes,
                j.overhead_alm_pct, j.overhead_register_pct);
    if (!options.canonical) {
      out += strf(",%d,%.17g", j.cache_hit ? 1 : 0, j.wall_ms);
    }
    out += "\n";
  }
  return out;
}

std::string write_report(const BatchResult& result, const std::string& prefix,
                         const ReportOptions& options) {
  const std::string json_path = prefix + ".json";
  const std::string csv_path = prefix + ".csv";
  {
    std::ofstream f(json_path, std::ios::trunc);
    if (!f.good()) fail("cannot write " + json_path);
    f << report_json(result, options) << "\n";
  }
  {
    std::ofstream f(csv_path, std::ios::trunc);
    if (!f.good()) fail("cannot write " + csv_path);
    f << report_csv(result, options);
  }
  return json_path;
}

std::string summary_table(const BatchResult& result) {
  std::string out = strf("%-36s %-9s %16s %10s %8s %10s\n", "job", "status",
                         "kernel cycles", "GFLOP/s", "run%", "trace B");
  for (const JobResult& j : result.jobs) {
    out += strf("%-36s %-9s %16s %10.3f %7.1f%% %10llu\n", j.name.c_str(),
                job_status_name(j.status),
                with_commas(j.kernel_cycles).c_str(), j.gflops,
                100 * j.state_running, (unsigned long long)j.trace_bytes);
  }
  out += strf("%zu jobs: %d ok, %d failed, %d timed out | cache %lld hits / "
              "%lld misses | %d workers, %.0f ms\n",
              result.jobs.size(), result.count(JobStatus::ok),
              result.count(JobStatus::failed),
              result.count(JobStatus::timed_out), result.cache_hits,
              result.cache_misses, result.workers, result.wall_ms);
  return out;
}

}  // namespace hlsprof::runner
