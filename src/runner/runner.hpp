// Umbrella header for the batch-experiment runner: a worker-pool
// scheduler (pool.hpp), a content-addressed design cache
// (design_cache.hpp), the batch API with deterministic per-job seeding
// (job.hpp, batch.hpp), JSON/CSV reporting (report.hpp), the sweep
// manifest format behind the `hlsprof-run` CLI (manifest.hpp), and the
// multi-process shard coordinator (shard.hpp).
//
//   runner::Batch batch;
//   for (int threads : {1, 2, 4, 8, 16}) {
//     runner::JobSpec spec;
//     spec.name = "gemm.t" + std::to_string(threads);
//     spec.kernel = [=](SplitMix64&) { ... return kernel IR ...; };
//     spec.bind = [](core::Session& s, runner::HostBuffers& b, SplitMix64&) {
//       s.sim().bind_f32("A", b.f32(...)); ...
//     };
//     batch.add(std::move(spec));
//   }
//   runner::BatchOptions opts;
//   opts.workers = 8;
//   runner::BatchResult result = batch.run(opts);
//   std::string json = runner::report_json(result);
#pragma once

#include "runner/batch.hpp"
#include "runner/design_cache.hpp"
#include "runner/job.hpp"
#include "runner/manifest.hpp"
#include "runner/pool.hpp"
#include "runner/report.hpp"
#include "runner/shard.hpp"
