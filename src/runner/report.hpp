// Machine-readable batch reports: one JSON document and one CSV table per
// batch (cycles, GFLOP/s, state percentages, trace bytes, overhead,
// wall-clock, cache counters). Canonical mode omits the fields that
// legitimately vary between runs (wall-clock) or between worker counts
// (per-job cache-hit attribution), so two runs of the same batch produce
// byte-identical canonical reports — the determinism tests rely on it.
#pragma once

#include <string>

#include "runner/batch.hpp"

namespace hlsprof::runner {

struct ReportOptions {
  /// true: omit wall_ms, workers, and per-job cache_hit — every remaining
  /// byte is deterministic for a given batch + seed.
  bool canonical = false;
  /// Optional batch label recorded in the report header.
  std::string label;
};

std::string report_json(const BatchResult& result,
                        const ReportOptions& options = ReportOptions{});

/// One header line + one row per job; same field policy as the JSON.
std::string report_csv(const BatchResult& result,
                       const ReportOptions& options = ReportOptions{});

/// Write `<prefix>.json` and `<prefix>.csv`. Throws hlsprof::Error if a
/// file cannot be written. Returns the JSON path.
std::string write_report(const BatchResult& result, const std::string& prefix,
                         const ReportOptions& options = ReportOptions{});

/// Human-oriented fixed-width summary table (for CLI/bench stdout).
std::string summary_table(const BatchResult& result);

}  // namespace hlsprof::runner
