// Text manifests describing a parameter sweep, consumed by the
// `hlsprof-run` CLI and by tests. Line-based `key = value` format, `#`
// comments; list-valued keys (comma-separated) are swept as a cross
// product, in declared key order, so job order — and therefore report
// content — is a pure function of the manifest.
//
//   # GEMM thread sweep (paper §V-A saturation study)
//   workload = gemm
//   version  = vectorized
//   dim      = 128
//   threads  = 1,2,4,8,16
//   profiling = off
//   workers  = 8
//   verify   = on
//   out      = gemm_threads
//
// Supported workloads: gemm (versions naive|no_critical|vectorized|
// blocked|double_buffered|preloaded), pi, vecadd, dot. Sweepable keys:
// version, dim, threads, block, vector_len, steps, unroll, n,
// sampling_period, buffer_lines, thread_reordering. Scalar keys:
// workload, profiling (on|off), thread_start_interval, max_cycles,
// workers, seed, verify (on|off), out, label, cache_dir,
// cache_max_bytes (the persistent design-cache location and LRU cap —
// see docs/CACHING.md; CLI --cache-dir/--cache-max-bytes override).
// Control keys: select (comma list of job indices — run only that
// subset of the expanded cross product, original indices and seeds
// preserved; the shard coordinator's sub-manifest mechanism, see
// docs/SHARDING.md).
#pragma once

#include <string>

#include "runner/batch.hpp"

namespace hlsprof::runner {

struct ManifestRun {
  Batch batch;
  BatchOptions options;
  std::string label;       // defaults to the workload name
  std::string out_prefix;  // empty = caller decides (stdout only)
};

/// Parse manifest text. Throws hlsprof::Error on unknown keys, malformed
/// values, or unsupported workloads — with the offending line quoted.
ManifestRun parse_manifest(const std::string& text);

/// Read and parse a manifest file. A relative `out` prefix is resolved
/// against the manifest file's directory, so report and telemetry
/// sidecars land next to the manifest instead of the process CWD.
ManifestRun load_manifest(const std::string& path);

/// Switch an already-parsed run to approximate fast-forward mode, exactly
/// as `approx_trace = on` in the manifest would have: every job gets
/// SimParams::fast_forward and loses its functional check (skipped
/// iterations do not execute, so outputs are not meaningful). Backs the
/// CLI --approx-trace override.
void apply_approx_trace(ManifestRun& run);

}  // namespace hlsprof::runner
