// Job descriptions and results for the batch runner. A JobSpec is a
// self-contained recipe — kernel factory, compile options, run options,
// buffer binding, optional result check — so the scheduler can execute it
// on any worker thread. A JobResult is the flattened, report-ready metric
// record the JSON/CSV layer serializes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/hlsprof.hpp"

namespace hlsprof::runner {

/// Keep-alive storage for host buffers bound into a simulator. Spans bound
/// via Simulator::bind_* must outlive run(); allocating through this pool
/// ties buffer lifetime to the job execution, and the check callback can
/// read results back out afterwards. Deques keep element addresses stable
/// across allocations.
class HostBuffers {
 public:
  std::vector<float>& f32(std::vector<float> init) {
    f32_.push_back(std::move(init));
    return f32_.back();
  }
  std::vector<float>& f32(std::size_t n, float fill = 0.0f) {
    return f32(std::vector<float>(n, fill));
  }
  std::vector<double>& f64(std::vector<double> init) {
    f64_.push_back(std::move(init));
    return f64_.back();
  }
  std::vector<std::int32_t>& i32(std::vector<std::int32_t> init) {
    i32_.push_back(std::move(init));
    return i32_.back();
  }
  std::vector<std::int64_t>& i64(std::vector<std::int64_t> init) {
    i64_.push_back(std::move(init));
    return i64_.back();
  }

  /// i-th f32 buffer in allocation order — lets a check callback reach
  /// buffers its bind callback allocated without shared captured state.
  std::vector<float>& f32_at(std::size_t i) { return f32_.at(i); }
  std::size_t f32_count() const { return f32_.size(); }

 private:
  std::deque<std::vector<float>> f32_;
  std::deque<std::vector<double>> f64_;
  std::deque<std::vector<std::int32_t>> i32_;
  std::deque<std::vector<std::int64_t>> i64_;
};

/// One run in a batch. All callbacks must be thread-compatible: they are
/// invoked from one worker thread at a time, but different jobs run
/// concurrently, so they must not share mutable state without locking.
struct JobSpec {
  std::string name;

  /// Builds the kernel IR. The RNG is seeded deterministically per job
  /// (see Batch), so randomized kernels reproduce across runs and worker
  /// counts. Throwing (e.g. IR verification failure) marks the job failed.
  std::function<ir::Kernel(SplitMix64&)> kernel;

  /// HLS compile options — part of the design-cache key.
  hls::HlsOptions hls;

  core::RunOptions run;

  /// Bind buffers / scalar args before the run. Allocate host memory
  /// through HostBuffers so it outlives the simulation.
  std::function<void(core::Session&, HostBuffers&, SplitMix64&)> bind;

  /// Optional verification after the run; throw hlsprof::Error (or any
  /// exception) to mark the job failed.
  std::function<void(const core::RunResult&, HostBuffers&)> check;

  /// 0 = derive from the batch seed and the job index.
  std::uint64_t seed = 0;

  /// Per-job simulated-cycle budget (the runner's notion of a timeout:
  /// wall-clock kills are not safe for an in-process simulator, but the
  /// simulator aborts deterministically when the budget is exhausted and
  /// the job is reported failed). 0 = keep RunOptions' limit.
  cycle_t max_cycles = 0;

  /// Soft wall-clock budget in milliseconds. The job is never interrupted
  /// (results stay deterministic); exceeding the budget downgrades an ok
  /// result to timed_out in the report. 0 = none.
  double soft_timeout_ms = 0.0;
};

enum class JobStatus { ok, failed, timed_out };

const char* job_status_name(JobStatus s);

/// Flattened per-job record. Everything here is deterministic except
/// wall_ms and cache_hit (which job of several sharing a design performs
/// the one compile depends on scheduling); reports in canonical mode omit
/// those fields.
struct JobResult {
  int index = -1;
  std::string name;
  JobStatus status = JobStatus::ok;
  std::string error;  // failure/timeout message
  std::uint64_t seed = 0;

  std::uint64_t design_key = 0;  // content hash (0 if compile never ran)
  bool cache_hit = false;
  double wall_ms = 0.0;

  // Design metrics.
  double fmax_mhz = 0.0;
  double alm = 0.0;
  double bram_bits = 0.0;
  int num_threads = 0;

  // Run metrics.
  cycle_t total_cycles = 0;
  cycle_t kernel_cycles = 0;
  cycle_t stall_cycles = 0;
  long long fp_ops = 0;
  double gflops = 0.0;  // fp_ops over total_cycles at the design fmax
  double row_hit_rate = 0.0;

  // Trace metrics (zero when profiling was disabled).
  bool has_trace = false;
  double state_idle = 0.0;
  double state_running = 0.0;
  double state_critical = 0.0;
  double state_spinning = 0.0;
  long long state_records = 0;
  long long event_records = 0;
  long long flush_bursts = 0;
  std::uint64_t trace_bytes = 0;
  /// Peak host-side trace residency of the streaming decode pipeline
  /// (largest single flush burst) — bounded by the profiling buffer size,
  /// not the trace length.
  std::uint64_t peak_trace_buffer_bytes = 0;
  double overhead_alm_pct = 0.0;
  double overhead_register_pct = 0.0;
};

}  // namespace hlsprof::runner
