// Content-addressed on-disk store of compiled designs — the second tier
// of runner::DesignCache. One file per design key (`<hex-key>.design`),
// payload = hls::serialize_design bytes, guarded by a header carrying a
// store version, a build-compatibility stamp, the key, and a payload
// hash. Crash- and concurrency-safe by construction: writes go to a
// temp file in the same directory and are published with an atomic
// rename, so readers (including other processes) only ever see complete
// entries; any mismatch or truncation on read is a silent miss that the
// cache answers by recompiling and rewriting the entry.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "hls/design.hpp"

namespace hlsprof::runner {

class DiskDesignStore {
 public:
  struct Options {
    /// Store directory; created (recursively) if missing.
    std::string dir;
    /// LRU size cap in bytes, enforced at open time and continuously
    /// after: store() tracks an estimate of the on-disk total and
    /// re-runs the eviction pass whenever a write pushes it past the
    /// cap, so a long-lived process (the serving daemon, a shard fleet)
    /// stays bounded instead of growing until the next open. 0 =
    /// unbounded.
    std::uint64_t max_bytes = 0;
  };

  struct Stats {
    long long hits = 0;        // load() returned a design
    long long misses = 0;      // load() fell through (absent/corrupt/stale)
    long long evictions = 0;   // entries removed by any LRU eviction pass
    long long bytes_written = 0;
  };

  /// Opens the store: creates the directory, removes stale temp files
  /// left by crashed writers, and runs the LRU eviction pass (oldest
  /// last-use first) if the cap is exceeded. Throws hlsprof::Error only
  /// if the directory cannot be created — an unusable cache location is
  /// a configuration error, unlike a bad entry, which never is.
  explicit DiskDesignStore(Options options);

  /// Fetch the design stored under `key`, or nullptr on any miss:
  /// absent file, bad magic/version, foreign build stamp, key or
  /// payload-hash mismatch, truncation, or a deserializer error. Never
  /// throws; a hit refreshes the entry's last-use time for the LRU.
  std::shared_ptr<const hls::Design> load(std::uint64_t key);

  /// Serialize and publish the entry (temp file + atomic rename).
  /// Best-effort: I/O failure leaves the store unchanged and is not an
  /// error (the in-memory tier still has the design).
  void store(std::uint64_t key, const hls::Design& design);

  const std::string& dir() const { return options_.dir; }
  std::uint64_t max_bytes() const { return options_.max_bytes; }
  Stats stats() const;

  /// Path of the entry file a key maps to (for tests and tooling).
  static std::string entry_path(const std::string& dir, std::uint64_t key);

 private:
  /// Scan the directory (dropping stale temp files when `clean_tmp`),
  /// evict least-recently-used entries while over the cap, and return
  /// the resulting on-disk total. Caller holds mu_ (or is the ctor).
  std::uint64_t scan_and_evict_locked(bool clean_tmp);

  Options options_;
  mutable std::mutex mu_;
  Stats stats_;
  std::uint64_t tmp_seq_ = 0;
  /// Estimated on-disk total: exact after each scan, then grown by every
  /// published write. Overwrites of an existing key double-count (the
  /// estimate only ever errs high), which at worst triggers the rescan —
  /// the amortization, not the correctness, depends on it.
  std::uint64_t approx_bytes_ = 0;
};

}  // namespace hlsprof::runner
