#include "runner/pool.hpp"

#include <algorithm>

namespace hlsprof::runner {

Pool::Pool(int workers) {
  const int n = std::max(1, workers);
  threads_.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Pool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void Pool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int Pool::resolve_workers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? int(hw) : 1;
}

void Pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hlsprof::runner
