#include "runner/pool.hpp"

#include <algorithm>
#include <string>

#include "telemetry/telemetry.hpp"

namespace hlsprof::runner {

namespace {

/// Pool telemetry handles, resolved once per process.
struct PoolMetrics {
  telemetry::Counter& tasks;
  telemetry::Counter& busy_us;
  telemetry::Histogram& queue_wait_us;
  telemetry::Histogram& task_ms;
  telemetry::Gauge& in_flight;
  static PoolMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static PoolMetrics m{
        reg.counter("runner.tasks"),
        reg.counter("runner.busy_us", "us"),
        reg.histogram("runner.queue_wait_us",
                      telemetry::exp_bounds(10.0, 4.0, 10), "us"),
        reg.histogram("runner.task_ms", telemetry::exp_bounds(0.5, 2.0, 14),
                      "ms"),
        reg.gauge("runner.jobs_in_flight", "jobs"),
    };
    return m;
  }
};

}  // namespace

Pool::Pool(int workers) {
  const int n = std::max(1, workers);
  threads_.reserve(std::size_t(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Pool::~Pool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void Pool::submit(std::function<void()> task) {
  auto& reg = telemetry::Registry::global();
  Item item{std::move(task), reg.enabled() ? reg.now_us() : 0};
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  work_cv_.notify_one();
}

void Pool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t Pool::cancel_pending() {
  std::deque<Item> dropped;
  {
    std::unique_lock<std::mutex> lock(mu_);
    dropped.swap(queue_);
    if (active_ == 0) idle_cv_.notify_all();
  }
  // Destroy the dropped closures outside the lock: they may own heavy
  // captures (buffers, shared_ptrs) whose destructors should not stall
  // submitters or workers.
  return dropped.size();
}

std::size_t Pool::pending() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

int Pool::resolve_workers(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? int(hw) : 1;
}

void Pool::worker_loop(int index) {
  auto& reg = telemetry::Registry::global();
  if (reg.enabled()) {
    reg.bind_thread_track(
        reg.register_track("worker-" + std::to_string(index)));
  }
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      item = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    const bool telemetry_on = reg.enabled();
    std::uint64_t t0 = 0;
    if (telemetry_on) {
      PoolMetrics& m = PoolMetrics::get();
      t0 = reg.now_us();
      if (item.enq_us != 0) {
        m.queue_wait_us.observe(double(t0 - item.enq_us));
      }
      m.in_flight.add(1.0);
    }
    item.task();
    if (telemetry_on) {
      PoolMetrics& m = PoolMetrics::get();
      const std::uint64_t dur = reg.now_us() - t0;
      m.tasks.add(1);
      m.busy_us.add(static_cast<long long>(dur));
      m.task_ms.observe(double(dur) / 1e3);
      m.in_flight.add(-1.0);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hlsprof::runner
