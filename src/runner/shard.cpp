#include "runner/shard.hpp"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "runner/manifest.hpp"
#include "runner/pool.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace hlsprof::runner {

namespace fs = std::filesystem;

namespace {

constexpr const char* kProgressPrefix = "##hlsprof-job ";

/// Key of a `key = value` manifest line; empty for blanks and comments.
std::string line_key(const std::string& line) {
  const std::string t = trim(line);
  if (t.empty() || t[0] == '#') return std::string();
  const auto eq = t.find('=');
  if (eq == std::string::npos) return std::string();
  return trim(t.substr(0, eq));
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return std::string();
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

const JsonValue& need(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    fail(strf("shard: report is missing field \"%s\"", key));
  }
  return *v;
}

JobStatus status_from_name(const std::string& name) {
  for (JobStatus s :
       {JobStatus::ok, JobStatus::failed, JobStatus::timed_out}) {
    if (name == job_status_name(s)) return s;
  }
  fail("shard: report has unknown job status \"" + name + "\"");
}

std::uint64_t key_from_hex(const std::string& hex) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(hex, &used, 16);
    if (used == hex.size() && !hex.empty()) return v;
  } catch (const std::exception&) {
  }
  fail("shard: report has malformed design_key \"" + hex + "\"");
}

}  // namespace

ShardStrategy shard_strategy_from_name(const std::string& name) {
  if (name == "block") return ShardStrategy::block;
  if (name == "round_robin" || name == "round-robin") {
    return ShardStrategy::round_robin;
  }
  fail("shard: unknown strategy \"" + name +
       "\" (expected block or round_robin)");
}

std::vector<std::vector<int>> split_indices(const std::vector<int>& universe,
                                            int shards,
                                            ShardStrategy strategy) {
  HLSPROF_CHECK(shards >= 1, "shard: shard count must be >= 1");
  std::vector<std::vector<int>> out;
  out.resize(std::size_t(shards));
  if (strategy == ShardStrategy::round_robin) {
    for (std::size_t i = 0; i < universe.size(); ++i) {
      out[i % std::size_t(shards)].push_back(universe[i]);
    }
    return out;
  }
  // block: contiguous chunks, the first (size % shards) chunks one longer.
  const std::size_t base = universe.size() / std::size_t(shards);
  std::size_t extra = universe.size() % std::size_t(shards);
  std::size_t pos = 0;
  for (auto& chunk : out) {
    std::size_t n = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    for (std::size_t k = 0; k < n; ++k) chunk.push_back(universe[pos++]);
  }
  return out;
}

std::string make_sub_manifest(const std::string& manifest_text,
                              const std::vector<int>& indices,
                              long long seed_override, bool approx_trace) {
  HLSPROF_CHECK(!indices.empty(), "shard: empty index list");
  std::string out;
  std::istringstream in(manifest_text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string key = line_key(line);
    if (key == "select" || key == "out") continue;
    if (key == "seed" && seed_override >= 0) continue;
    if (key == "approx_trace" && approx_trace) continue;
    out += line;
    out += '\n';
  }
  out += "select = ";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(indices[i]);
  }
  out += '\n';
  if (seed_override >= 0) {
    out += "seed = " + std::to_string(seed_override) + "\n";
  }
  if (approx_trace) out += "approx_trace = on\n";
  return out;
}

std::vector<JobResult> parse_report_jobs(
    const std::string& report_json_text) {
  const JsonValue doc = json_parse(report_json_text);
  const std::string& schema = need(doc, "schema").as_string();
  if (schema != "hlsprof-batch-report") {
    fail("shard: unexpected report schema \"" + schema + "\"");
  }
  std::vector<JobResult> out;
  for (const JsonValue& jv : need(doc, "jobs").items()) {
    JobResult j;
    j.index = int(need(jv, "index").as_int64());
    j.name = need(jv, "name").as_string();
    j.status = status_from_name(need(jv, "status").as_string());
    if (const JsonValue* e = jv.find("error")) j.error = e->as_string();
    j.seed = need(jv, "seed").as_uint64();
    j.design_key = key_from_hex(need(jv, "design_key").as_string());
    const JsonValue& design = need(jv, "design");
    j.fmax_mhz = need(design, "fmax_mhz").as_double();
    j.alm = need(design, "alm").as_double();
    j.bram_bits = need(design, "bram_bits").as_double();
    j.num_threads = int(need(design, "num_threads").as_int64());
    const JsonValue& run = need(jv, "run");
    j.total_cycles = cycle_t(need(run, "total_cycles").as_uint64());
    j.kernel_cycles = cycle_t(need(run, "kernel_cycles").as_uint64());
    j.stall_cycles = cycle_t(need(run, "stall_cycles").as_uint64());
    j.fp_ops = need(run, "fp_ops").as_int64();
    j.gflops = need(run, "gflops").as_double();
    j.row_hit_rate = need(run, "row_hit_rate").as_double();
    const JsonValue& trace = need(jv, "trace");
    j.has_trace = need(trace, "has_trace").as_bool();
    j.state_idle = need(trace, "state_idle").as_double();
    j.state_running = need(trace, "state_running").as_double();
    j.state_critical = need(trace, "state_critical").as_double();
    j.state_spinning = need(trace, "state_spinning").as_double();
    j.state_records = need(trace, "state_records").as_int64();
    j.event_records = need(trace, "event_records").as_int64();
    j.flush_bursts = need(trace, "flush_bursts").as_int64();
    j.trace_bytes = need(trace, "trace_bytes").as_uint64();
    j.peak_trace_buffer_bytes =
        need(trace, "peak_trace_buffer_bytes").as_uint64();
    j.overhead_alm_pct = need(trace, "overhead_alm_pct").as_double();
    j.overhead_register_pct =
        need(trace, "overhead_register_pct").as_double();
    out.push_back(std::move(j));
  }
  return out;
}

BatchResult merge_job_results(
    const std::vector<std::vector<JobResult>>& per_shard,
    const std::vector<int>& expected_indices, int* duplicates) {
  std::unordered_map<int, std::size_t> slot_of;
  slot_of.reserve(expected_indices.size());
  for (std::size_t k = 0; k < expected_indices.size(); ++k) {
    slot_of.emplace(expected_indices[k], k);
  }
  BatchResult merged;
  merged.jobs.resize(expected_indices.size());
  std::unordered_set<int> remaining(expected_indices.begin(),
                                    expected_indices.end());
  int dups = 0;
  for (const auto& shard_jobs : per_shard) {
    for (const JobResult& j : shard_jobs) {
      const auto it = slot_of.find(j.index);
      if (it == slot_of.end()) {
        fail(strf("shard: merged report contains unexpected job index %d",
                  j.index));
      }
      if (remaining.erase(j.index) == 0) {
        ++dups;  // a later byte-identical copy; first one already won
        continue;
      }
      merged.jobs[it->second] = j;
    }
  }
  if (!remaining.empty()) {
    int lowest = *remaining.begin();
    for (int i : remaining) lowest = std::min(lowest, i);
    fail(strf("shard: no shard delivered job index %d (%zu missing)",
              lowest, remaining.size()));
  }
  rebase_cache_stats(merged);
  if (duplicates != nullptr) *duplicates = dups;
  return merged;
}

std::string format_progress_line(const JobResult& job) {
  return strf("%sindex=%d status=%s cycles=%llu running=%.3f spinning=%.3f "
              "name=%s",
              kProgressPrefix, job.index, job_status_name(job.status),
              static_cast<unsigned long long>(job.total_cycles),
              job.state_running, job.state_spinning, job.name.c_str());
}

bool parse_progress_line(const std::string& line, ProgressLine* out) {
  const std::string t = trim(line);
  if (!starts_with(t, kProgressPrefix)) return false;
  const auto idx_at = t.find("index=");
  const auto status_at = t.find(" status=");
  const auto name_at = t.find(" name=");
  if (idx_at == std::string::npos || status_at == std::string::npos ||
      name_at == std::string::npos || status_at < idx_at ||
      name_at < status_at) {
    return false;
  }
  ProgressLine p;
  try {
    p.index = std::stoi(t.substr(idx_at + 6, status_at - (idx_at + 6)));
  } catch (const std::exception&) {
    return false;
  }
  // Status runs to the first space, so lines with or without the metric
  // fields both parse.
  const auto status_end = t.find(' ', status_at + 8);
  if (status_end == std::string::npos || status_end > name_at) return false;
  p.status = t.substr(status_at + 8, status_end - (status_at + 8));
  p.name = t.substr(name_at + 6);  // the name runs to end of line
  // Optional metric fields between status and name.
  const std::string mid = t.substr(status_end, name_at - status_end);
  const auto field = [&mid](const char* key) -> std::string {
    const std::string needle = std::string(" ") + key + "=";
    const auto at = mid.find(needle);
    if (at == std::string::npos) return std::string();
    const auto start = at + needle.size();
    const auto end = mid.find(' ', start);
    return mid.substr(start,
                      end == std::string::npos ? std::string::npos
                                               : end - start);
  };
  const std::string cycles = field("cycles");
  if (!cycles.empty()) {
    p.cycles = std::strtoull(cycles.c_str(), nullptr, 10);
  }
  const std::string running = field("running");
  if (!running.empty()) p.running = std::strtod(running.c_str(), nullptr);
  const std::string spinning = field("spinning");
  if (!spinning.empty()) p.spinning = std::strtod(spinning.c_str(), nullptr);
  *out = p;
  return true;
}

bool parse_progress_line(const std::string& line, int* index,
                         std::string* status, std::string* name) {
  ProgressLine p;
  if (!parse_progress_line(line, &p)) return false;
  *index = p.index;
  *status = p.status;
  *name = p.name;
  return true;
}

namespace {

struct Event {
  enum class Kind { job_done, shard_exit };
  Kind kind = Kind::job_done;
  int shard = 0;
  // job_done
  ProgressLine job;
  // shard_exit
  bool ok = false;
  std::string report;  // canonical report JSON when ok
  std::string error;
};

/// The coordinator's one stderr funnel (ISSUE: merged progress lines
/// must never tear mid-line). Lines accumulate into a pending buffer
/// under a mutex and are flushed as a single fwrite per event-loop
/// drain, so output from the coordinator interleaves with the childrens'
/// inherited stderr only at batch boundaries, never inside a line.
class ProgressWriter {
 public:
  explicit ProgressWriter(
      const std::function<void(const std::string&)>& emit)
      : emit_(emit) {}

  /// Queue one line (no trailing newline).
  void note(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ += line;
    pending_ += '\n';
  }

  /// Write everything queued since the last flush in one atomic batch.
  void flush() {
    std::string batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) return;
      batch.swap(pending_);
    }
    if (emit_) {
      emit_(batch);
      return;
    }
    std::fwrite(batch.data(), 1, batch.size(), stderr);
    std::fflush(stderr);
  }

 private:
  const std::function<void(const std::string&)>& emit_;
  std::mutex mu_;
  std::string pending_;
};

struct ShardTelemetry {
  telemetry::Counter& launched;
  telemetry::Counter& redispatched;
  telemetry::Counter& jobs_redispatched;
  telemetry::Counter& duplicates;
  telemetry::Histogram& wall_ms;
  static ShardTelemetry& get() {
    auto& reg = telemetry::Registry::global();
    static ShardTelemetry t{
        reg.counter("shard.launched"),
        reg.counter("shard.redispatched"),
        reg.counter("shard.jobs_redispatched"),
        reg.counter("shard.duplicates"),
        reg.histogram("shard.wall_ms",
                      telemetry::exp_bounds(16.0, 2.0, 16), "ms"),
    };
    return t;
  }
};

/// One launched shard (initial, replacement, or speculative backup).
struct Shard {
  int id = 0;
  std::vector<int> indices;  // original job indices it was given
  std::thread thread;
  int pid = -1;  // process mode; -1 in daemon mode
  std::chrono::steady_clock::time_point start;
  bool exited = false;
  bool speculated = false;  // a backup was already launched for it
  /// Launch time on the coordinator's telemetry clock (µs since the
  /// registry epoch): the offset that rebases this child's trace onto
  /// the fleet timeline.
  std::uint64_t t0_us = 0;
  std::string chrome_path;  // child's own Perfetto file (merge input)
};

class Coordinator {
 public:
  Coordinator(std::string manifest_text, const ShardOptions& opt)
      : text_(std::move(manifest_text)), opt_(opt) {}

  ~Coordinator() {
    // Defensive: on any exit path, no child outlives the coordinator and
    // every reader thread is joined.
    kill_running();
    for (auto& s : shards_) {
      if (s->thread.joinable()) s->thread.join();
    }
    for (auto& s : shards_) {
      // Reap children whose exit events were never processed (error
      // paths); ECHILD for already-reaped ones is harmless.
      if (s->pid > 0 && !s->exited) {
        int status = 0;
        while (::waitpid(pid_t(s->pid), &status, 0) < 0 && errno == EINTR) {
        }
      }
    }
    if (!tmpdir_.empty()) {
      std::error_code ec;
      fs::remove_all(tmpdir_, ec);
    }
  }

  ShardResult run();

 private:
  using clock = std::chrono::steady_clock;

  void prepare();
  void launch(std::vector<int> indices);
  void launch_process_shard(Shard& s);
  void launch_daemon_shard(Shard& s);
  void handle_event(const Event& e);
  void handle_exit(const Event& e);
  void redispatch(const Shard& from, std::vector<int> outstanding,
                  const std::string& why, bool speculative);
  void check_stragglers();
  void kill_running();
  std::vector<int> outstanding_of(const Shard& s) const;
  double elapsed_ms(clock::time_point since) const {
    return std::chrono::duration<double, std::milli>(clock::now() - since)
        .count();
  }

  void push(Event e) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(e));
    cv_.notify_one();
  }

  void write_merged_chrome_trace();

  std::string text_;
  const ShardOptions& opt_;
  ProgressWriter progress_{opt_.emit_progress};

  ManifestRun run_;           // parsed once for label/out/size
  std::vector<int> universe_;  // indices the merged result must cover
  std::unordered_map<int, std::size_t> slot_of_;
  std::vector<JobResult> slots_;
  std::unordered_set<int> remaining_;
  std::unordered_set<int> progressed_;  // distinct indices seen on pipes

  std::string tmpdir_;
  std::string runner_binary_;
  int workers_per_shard_ = 1;
  int redispatches_ = 0;
  int max_redispatch_ = 0;
  int duplicates_ = 0;
  std::size_t daemon_rr_ = 0;  // round-robin cursor over opt_.connect
  std::vector<double> completed_walls_;
  std::string fatal_;

  // unique_ptr: Shard holds a thread and is referenced by id across
  // reallocation of the vector.
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Event> events_;
};

void Coordinator::prepare() {
  HLSPROF_CHECK(opt_.shards >= 1, "shard: --shards must be >= 1");
  const bool daemon_mode = !opt_.connect.empty();
  if (daemon_mode) {
    HLSPROF_CHECK(opt_.submit != nullptr,
                  "shard: daemon mode requires a submit hook");
  }

  run_ = parse_manifest(text_);
  HLSPROF_CHECK(run_.batch.size() > 0, "shard: manifest expands to no jobs");
  if (run_.options.select.empty()) {
    universe_.resize(run_.batch.size());
    for (std::size_t i = 0; i < universe_.size(); ++i) universe_[i] = int(i);
  } else {
    universe_ = run_.options.select;  // shard over the manifest's own subset
  }
  slots_.resize(universe_.size());
  for (std::size_t k = 0; k < universe_.size(); ++k) {
    slot_of_.emplace(universe_[k], k);
  }
  remaining_.insert(universe_.begin(), universe_.end());

  max_redispatch_ =
      opt_.max_redispatch > 0 ? opt_.max_redispatch : 2 * opt_.shards;
  workers_per_shard_ =
      opt_.workers_per_shard > 0
          ? opt_.workers_per_shard
          : std::max(1, Pool::resolve_workers(0) / opt_.shards);

  if (!daemon_mode) {
    if (!opt_.runner_binary.empty()) {
      runner_binary_ = opt_.runner_binary;
    } else {
      char buf[4096];
      const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
      HLSPROF_CHECK(n > 0, "shard: cannot resolve the runner binary "
                           "(/proc/self/exe unreadable)");
      buf[n] = '\0';
      runner_binary_ = buf;
    }
    if (::access(runner_binary_.c_str(), X_OK) != 0) {
      fail("shard: runner binary is not executable: " + runner_binary_);
    }
    std::string tmpl =
        (fs::temp_directory_path() / "hlsprof-shard-XXXXXX").string();
    std::vector<char> mut(tmpl.begin(), tmpl.end());
    mut.push_back('\0');
    HLSPROF_CHECK(::mkdtemp(mut.data()) != nullptr,
                  "shard: cannot create scratch directory");
    tmpdir_ = mut.data();
  }
}

void Coordinator::launch(std::vector<int> indices) {
  auto shard = std::make_unique<Shard>();
  shard->id = int(shards_.size());
  shard->indices = std::move(indices);
  shard->start = clock::now();
  Shard& s = *shards_.emplace_back(std::move(shard));
  auto& reg = telemetry::Registry::global();
  if (reg.enabled()) ShardTelemetry::get().launched.add(1);
  if (opt_.connect.empty()) {
    launch_process_shard(s);
  } else {
    launch_daemon_shard(s);
  }
}

void Coordinator::launch_process_shard(Shard& s) {
  const std::string manifest_path =
      (fs::path(tmpdir_) / strf("shard-%d.manifest", s.id)).string();
  const std::string out_prefix =
      (fs::path(tmpdir_) / strf("shard-%d", s.id)).string();
  {
    std::ofstream f(manifest_path, std::ios::trunc);
    HLSPROF_CHECK(f.good(), "shard: cannot write " + manifest_path);
    f << make_sub_manifest(text_, s.indices, opt_.seed_override,
                           opt_.approx_trace);
  }

  std::vector<std::string> args = {
      runner_binary_,
      manifest_path,
      "--canonical",
      "--quiet",
      "--progress",
      "--out=" + out_prefix,
      "--workers=" + std::to_string(workers_per_shard_),
  };
  if (!opt_.cache_dir.empty()) {
    args.push_back("--cache-dir=" + opt_.cache_dir);
    if (opt_.cache_max_bytes != 0) {
      args.push_back("--cache-max-bytes=" +
                     std::to_string(opt_.cache_max_bytes));
    }
  }
  if (!opt_.child_telemetry_prefix.empty()) {
    args.push_back("--telemetry-out=" + opt_.child_telemetry_prefix +
                   std::to_string(s.id) + ".json");
  }
  if (opt_.child_live_lines) args.push_back("--live-lines");
  if (!opt_.chrome_trace_out.empty()) {
    s.chrome_path =
        (fs::path(tmpdir_) / strf("shard-%d.trace.json", s.id)).string();
    args.push_back("--chrome-trace=" + s.chrome_path);
  }
  s.t0_us = telemetry::Registry::global().now_us();
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  int fds[2];
  HLSPROF_CHECK(::pipe(fds) == 0, "shard: pipe failed");
  const pid_t pid = ::fork();
  HLSPROF_CHECK(pid >= 0, "shard: fork failed");
  if (pid == 0) {
    // Child: progress lines go up the pipe; stderr stays inherited.
    // Only async-signal-safe calls between fork and exec.
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  s.pid = int(pid);
  if (opt_.on_spawn) opt_.on_spawn(s.id, s.pid);

  const int shard_id = s.id;
  const int read_fd = fds[0];
  const std::string report_path = out_prefix + ".json";
  s.thread = std::thread([this, shard_id, read_fd, pid, report_path] {
    std::FILE* f = ::fdopen(read_fd, "r");
    if (f != nullptr) {
      char* line = nullptr;
      std::size_t cap = 0;
      ssize_t n = 0;
      while ((n = ::getline(&line, &cap, f)) >= 0) {
        const std::string raw(line, std::size_t(n));
        Event e;
        e.kind = Event::Kind::job_done;
        e.shard = shard_id;
        if (parse_progress_line(raw, &e.job)) {
          push(std::move(e));
        } else if (opt_.on_child_line) {
          // Other machine lines (##hlsprof-live ...) feed the fleet live
          // view directly from this reader thread.
          const std::string t = trim(raw);
          if (starts_with(t, "##hlsprof-")) opt_.on_child_line(shard_id, t);
        }
      }
      std::free(line);
      std::fclose(f);
    } else {
      ::close(read_fd);
    }
    // Peek the exit status WITHOUT reaping (WNOWAIT): the coordinator
    // may still SIGKILL this pid (straggler cleanup), which must never
    // race with pid recycling. The coordinator reaps after it marks the
    // shard exited, at which point it will never signal the pid again.
    siginfo_t si{};
    while (::waitid(P_PID, id_t(pid), &si, WEXITED | WNOWAIT) < 0 &&
           errno == EINTR) {
    }
    Event e;
    e.kind = Event::Kind::shard_exit;
    e.shard = shard_id;
    // Exit 1 means some jobs failed — their failures belong in the
    // merged report, so the shard itself still succeeded.
    if (si.si_code == CLD_EXITED && (si.si_status == 0 || si.si_status == 1)) {
      e.report = read_file_or_empty(report_path);
      e.ok = !e.report.empty();
      if (!e.ok) e.error = "exited cleanly but wrote no report";
    } else if (si.si_code == CLD_KILLED || si.si_code == CLD_DUMPED) {
      e.error = strf("killed by signal %d", si.si_status);
    } else {
      e.error = strf("exited with status %d%s", si.si_status,
                     si.si_status == 127 ? " (exec failed?)" : "");
    }
    push(std::move(e));
  });
}

void Coordinator::launch_daemon_shard(Shard& s) {
  const std::string socket = opt_.connect[daemon_rr_++ % opt_.connect.size()];
  const std::string manifest = make_sub_manifest(
      text_, s.indices, opt_.seed_override, opt_.approx_trace);
  const int shard_id = s.id;
  s.thread = std::thread([this, shard_id, socket, manifest] {
    Event e;
    e.kind = Event::Kind::shard_exit;
    e.shard = shard_id;
    try {
      e.report = opt_.submit(socket, manifest, strf("shard-%d", shard_id));
      e.ok = !e.report.empty();
      if (!e.ok) e.error = "daemon at " + socket + " returned no report";
    } catch (const std::exception& ex) {
      e.error = ex.what();
    }
    push(std::move(e));
  });
}

std::vector<int> Coordinator::outstanding_of(const Shard& s) const {
  std::vector<int> out;
  for (int i : s.indices) {
    if (remaining_.count(i) != 0) out.push_back(i);
  }
  return out;
}

void Coordinator::redispatch(const Shard& from, std::vector<int> outstanding,
                             const std::string& why, bool speculative) {
  if (!fatal_.empty()) return;
  if (redispatches_ >= max_redispatch_) {
    if (speculative) return;  // speculation is optional; give up quietly
    fatal_ = strf("shard: re-dispatch budget (%d) exhausted; shard %d %s "
                  "with %zu jobs outstanding",
                  max_redispatch_, from.id, why.c_str(), outstanding.size());
    return;
  }
  ++redispatches_;
  auto& reg = telemetry::Registry::global();
  if (reg.enabled()) {
    ShardTelemetry& t = ShardTelemetry::get();
    t.redispatched.add(1);
    t.jobs_redispatched.add(static_cast<long long>(outstanding.size()));
  }
  if (!opt_.quiet) {
    progress_.note(strf("hlsprof-run: shard %d %s; re-dispatching %zu jobs "
                        "as shard %zu",
                        from.id, why.c_str(), outstanding.size(),
                        shards_.size()));
  }
  launch(std::move(outstanding));
}

void Coordinator::handle_exit(const Event& e) {
  Shard& s = *shards_[std::size_t(e.shard)];
  s.exited = true;
  if (s.pid > 0) {
    // Safe to reap now: with `exited` set, this pid is never signalled
    // again, so recycling cannot misdirect a kill.
    int status = 0;
    while (::waitpid(pid_t(s.pid), &status, 0) < 0 && errno == EINTR) {
    }
  }
  const double wall = elapsed_ms(s.start);
  auto& reg = telemetry::Registry::global();
  if (reg.enabled()) ShardTelemetry::get().wall_ms.observe(wall);

  if (e.ok) {
    completed_walls_.push_back(wall);
    std::vector<JobResult> jobs;
    try {
      jobs = parse_report_jobs(e.report);
    } catch (const std::exception& ex) {
      const std::vector<int> outstanding = outstanding_of(s);
      if (!outstanding.empty()) {
        redispatch(s, outstanding,
                   strf("returned an unreadable report (%s)", ex.what()),
                   /*speculative=*/false);
      }
      return;
    }
    for (JobResult& j : jobs) {
      const auto it = slot_of_.find(j.index);
      if (it == slot_of_.end()) continue;  // not ours (defensive)
      if (remaining_.erase(j.index) == 0) {
        ++duplicates_;  // a speculative copy finished twice
        if (reg.enabled()) ShardTelemetry::get().duplicates.add(1);
        continue;
      }
      slots_[it->second] = std::move(j);
    }
    // A clean report that still left some of the shard's jobs unmerged
    // (truncated select handling would be a bug, but stay robust).
    const std::vector<int> missing = outstanding_of(s);
    if (!missing.empty()) {
      redispatch(s, missing, "delivered an incomplete report",
                 /*speculative=*/false);
    }
    return;
  }

  const std::vector<int> outstanding = outstanding_of(s);
  if (outstanding.empty()) return;  // redundant copy we killed; expected
  redispatch(s, outstanding, e.error, /*speculative=*/false);
}

void Coordinator::handle_event(const Event& e) {
  if (e.kind == Event::Kind::shard_exit) {
    handle_exit(e);
    return;
  }
  progressed_.insert(e.job.index);
  if (!opt_.quiet) {
    progress_.note(strf("hlsprof-run: [shard %d] %s %s (%zu/%zu)", e.shard,
                        e.job.name.c_str(), e.job.status.c_str(),
                        progressed_.size(), universe_.size()));
  }
}

void Coordinator::check_stragglers() {
  // Process mode only: a daemon submission cannot be abandoned, so a
  // speculative duplicate could not be cancelled and its thread would
  // block past the end of the run.
  if (!opt_.connect.empty() || opt_.straggler_factor <= 0) return;
  if (completed_walls_.size() < 2) return;
  std::vector<double> walls = completed_walls_;
  const std::size_t mid = walls.size() / 2;
  std::nth_element(walls.begin(), walls.begin() + mid, walls.end());
  const double median = walls[mid];
  const double threshold =
      std::max(opt_.straggler_min_ms, opt_.straggler_factor * median);
  const std::size_t launched = shards_.size();
  for (std::size_t k = 0; k < launched; ++k) {
    Shard& s = *shards_[k];
    if (s.exited || s.speculated) continue;
    if (elapsed_ms(s.start) <= threshold) continue;
    const std::vector<int> outstanding = outstanding_of(s);
    if (outstanding.empty()) continue;
    s.speculated = true;
    redispatch(s, outstanding,
               strf("is a straggler (%.0f ms vs %.0f ms median)",
                    elapsed_ms(s.start), median),
               /*speculative=*/true);
  }
}

void Coordinator::kill_running() {
  for (auto& sp : shards_) {
    if (!sp->exited && sp->pid > 0) ::kill(pid_t(sp->pid), SIGKILL);
  }
}

ShardResult Coordinator::run() {
  const clock::time_point t0 = clock::now();
  prepare();

  const std::vector<std::vector<int>> parts =
      split_indices(universe_, opt_.shards, opt_.strategy);
  for (const auto& p : parts) {
    if (!p.empty()) launch(p);
  }

  const auto all_exited = [&] {
    for (const auto& sp : shards_) {
      if (!sp->exited) return false;
    }
    return true;
  };

  // Drive events until every job is merged (or the run is doomed and
  // every shard has come home). Killed redundant shards report their
  // (failed) exits through the same queue, so the loop also serves as
  // the drain.
  for (;;) {
    std::deque<Event> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(200),
                   [&] { return !events_.empty(); });
      batch.swap(events_);
    }
    for (const Event& e : batch) handle_event(e);
    progress_.flush();
    if (remaining_.empty() && !all_exited()) kill_running();
    if ((remaining_.empty() || !fatal_.empty()) && all_exited()) break;
    if (!batch.empty()) continue;
    check_stragglers();
  }
  for (auto& sp : shards_) {
    if (sp->thread.joinable()) sp->thread.join();
  }
  if (!fatal_.empty()) fail(fatal_);
  HLSPROF_CHECK(remaining_.empty(), "shard: jobs left unmerged");

  // Child trace files live in tmpdir_ (removed by the destructor), so
  // the fleet trace must be assembled before run() returns.
  write_merged_chrome_trace();

  ShardResult out;
  out.merged.jobs = std::move(slots_);
  rebase_cache_stats(out.merged);
  out.merged.workers = workers_per_shard_ * opt_.shards;
  out.merged.wall_ms = elapsed_ms(t0);
  out.label = run_.label;
  out.out_prefix = run_.out_prefix;
  out.shards_launched = int(shards_.size());
  out.shards_redispatched = redispatches_;
  out.duplicate_jobs = duplicates_;
  return out;
}

void Coordinator::write_merged_chrome_trace() {
  if (opt_.chrome_trace_out.empty() || !opt_.connect.empty()) return;
  std::vector<telemetry::ChromeTraceInput> inputs;
  auto& reg = telemetry::Registry::global();
  if (reg.enabled()) {
    telemetry::ChromeTraceInput own;
    own.label = "coordinator";
    own.json_text = telemetry::chrome_trace_json(reg.snapshot(true));
    own.ts_offset_us = 0;  // children rebase onto this clock
    inputs.push_back(std::move(own));
  }
  for (const auto& sp : shards_) {
    if (sp->chrome_path.empty()) continue;
    telemetry::ChromeTraceInput in;
    in.label = strf("shard-%d", sp->id);
    in.json_text = read_file_or_empty(sp->chrome_path);
    in.ts_offset_us = sp->t0_us;
    if (!in.json_text.empty()) inputs.push_back(std::move(in));
  }
  telemetry::write_text_file(opt_.chrome_trace_out,
                             telemetry::merge_chrome_traces(inputs));
}

}  // namespace

ShardResult run_sharded_text(const std::string& manifest_text,
                             const ShardOptions& options) {
  Coordinator c(manifest_text, options);
  return c.run();
}

ShardResult run_sharded(const std::string& manifest_path,
                        const ShardOptions& options) {
  std::ifstream f(manifest_path, std::ios::binary);
  HLSPROF_CHECK(f.good(), "cannot open '" + manifest_path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return run_sharded_text(ss.str(), options);
}

}  // namespace hlsprof::runner
