#include "runner/manifest.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "workloads/gemm.hpp"
#include "workloads/pi.hpp"
#include "workloads/reference.hpp"
#include "workloads/simple.hpp"

namespace hlsprof::runner {

namespace {

// One key's values plus declaration order (sweep order must follow the
// manifest, not map iteration) and source position for error messages.
struct KeyValues {
  int order = 0;
  int line = 0;  // 1-based manifest line the key was declared on
  std::vector<std::string> values;
};

using KeyMap = std::map<std::string, KeyValues>;

const std::vector<std::string> kSweepKeys = {
    "version", "dim",    "threads",         "block",
    "vector_len", "steps", "unroll",        "n",
    "sampling_period", "buffer_lines", "thread_reordering"};

const std::vector<std::string> kScalarKeys = {
    "workload", "profiling", "thread_start_interval", "max_cycles",
    "workers",  "seed",      "verify",                "out",
    "label",    "cache_dir", "cache_max_bytes",       "approx_trace"};

// List-valued control keys: known and comma-separated like sweep keys,
// but they steer execution instead of adding a sweep axis. `select`
// restricts the run to the listed job indices of the full cross product
// (original indices and seeds preserved) — the shard coordinator's
// sub-manifest mechanism, also handy for re-running a failed subset.
const std::vector<std::string> kControlKeys = {"select"};

// Every integer-valued key, sweep or scalar: validated eagerly at parse
// time so a bad value is reported with its manifest line, not from deep
// inside job construction.
const std::vector<std::string> kIntKeys = {
    "dim", "threads", "block", "vector_len", "steps", "unroll", "n",
    "sampling_period", "buffer_lines", "workers", "seed",
    "thread_start_interval", "max_cycles", "cache_max_bytes"};

const std::vector<std::string> kOnOffKeys = {"profiling", "verify",
                                             "thread_reordering",
                                             "approx_trace"};

bool contains(const std::vector<std::string>& list, const std::string& k) {
  for (const auto& s : list) {
    if (s == k) return true;
  }
  return false;
}

bool known_key(const std::string& k) {
  return contains(kSweepKeys, k) || contains(kScalarKeys, k) ||
         contains(kControlKeys, k);
}

/// "manifest:<line>: " prefix when the line is known; plain "manifest: "
/// otherwise (values that reached us without source position).
std::string at(int line) {
  return line > 0 ? "manifest:" + std::to_string(line) + ": " : "manifest: ";
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const std::string& expected, int line) {
  fail(at(line) + "key '" + key + "': expected " + expected + ", got \"" +
       value + "\"");
}

std::int64_t parse_int(const std::string& key, const std::string& v,
                       int line = 0) {
  try {
    std::size_t used = 0;
    const long long out = std::stoll(v, &used);
    if (used != v.size()) bad_value(key, v, "an integer", line);
    return out;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    bad_value(key, v, "an integer", line);
  }
}

bool parse_on_off(const std::string& key, const std::string& v,
                  int line = 0) {
  if (v == "on" || v == "true" || v == "1") return true;
  if (v == "off" || v == "false" || v == "0") return false;
  bad_value(key, v, "on/off", line);
}

KeyMap parse_keys(const std::string& text) {
  KeyMap keys;
  int order = 0;
  int lineno = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string raw = trim(line);
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail(at(lineno) + "expected `key = value`, got \"" + raw + "\"");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (!known_key(key)) {
      fail(at(lineno) + "unknown key '" + key + "' (sweep keys: " +
           join(kSweepKeys, ", ") + "; scalar keys: " +
           join(kScalarKeys, ", ") + "; control keys: " +
           join(kControlKeys, ", ") + ")");
    }
    if (keys.count(key) != 0) {
      fail(at(lineno) + "duplicate key '" + key + "' (first declared on line " +
           std::to_string(keys[key].line) + ")");
    }
    KeyValues kv;
    kv.order = order++;
    kv.line = lineno;
    for (const std::string& part : split(value, ',')) {
      const std::string v = trim(part);
      if (!v.empty()) kv.values.push_back(v);
    }
    if (kv.values.empty()) {
      fail(at(lineno) + "key '" + key + "' has an empty value");
    }
    keys[key] = kv;
  }
  // Eager type validation: report bad values against their source line
  // while we still know it.
  for (const auto& [key, kv] : keys) {
    if (contains(kIntKeys, key) || key == "select") {
      for (const auto& v : kv.values) parse_int(key, v, kv.line);
    } else if (contains(kOnOffKeys, key)) {
      for (const auto& v : kv.values) parse_on_off(key, v, kv.line);
    }
  }
  return keys;
}

/// One fully resolved combination of sweep values.
using Combo = std::map<std::string, std::string>;

std::string scalar(const KeyMap& keys, const std::string& key,
                   const std::string& fallback) {
  auto it = keys.find(key);
  if (it == keys.end()) return fallback;
  if (it->second.values.size() != 1) {
    fail(at(it->second.line) + "key '" + key +
         "' must have a single value, got " +
         std::to_string(it->second.values.size()) + " (" +
         join(it->second.values, ", ") + ")");
  }
  return it->second.values[0];
}

std::int64_t combo_int(const Combo& c, const std::string& key,
                       std::int64_t fallback) {
  auto it = c.find(key);
  return it == c.end() ? fallback : parse_int(key, it->second);
}

const workloads::GemmVersion& gemm_version_named(const std::string& name) {
  // Manifest names use the identifier style, the version table the paper's
  // display names; accept both.
  static const std::vector<std::pair<std::string, std::size_t>> kAlias = {
      {"naive", 0},      {"no_critical", 1},     {"vectorized", 2},
      {"blocked", 3},    {"double_buffered", 4},
  };
  const auto& versions = workloads::gemm_versions();
  for (const auto& [alias, idx] : kAlias) {
    if (alias == name) return versions[idx];
  }
  for (const auto& v : versions) {
    if (v.name == name) return v;
  }
  std::string known;
  for (const auto& [alias, idx] : kAlias) {
    (void)idx;
    known += (known.empty() ? "" : ", ") + alias;
  }
  fail("manifest: key 'version': unknown gemm version \"" + name +
       "\" (known: " + known + ", preloaded)");
}

std::string combo_suffix(const Combo& c,
                         const std::vector<std::string>& swept) {
  std::string out;
  for (const auto& key : swept) {
    out += "." + key + "=" + c.at(key);
  }
  return out;
}

JobSpec make_gemm_job(const Combo& c, const std::string& name, bool verify) {
  workloads::GemmConfig cfg;
  cfg.dim = int(combo_int(c, "dim", 64));
  cfg.threads = int(combo_int(c, "threads", 8));
  cfg.vector_len = int(combo_int(c, "vector_len", 4));
  cfg.block = int(combo_int(c, "block", 8));
  const std::string version =
      c.count("version") ? c.at("version") : std::string("vectorized");

  JobSpec spec;
  spec.name = name;
  if (version == "preloaded") {
    spec.kernel = [cfg](SplitMix64&) { return workloads::gemm_preloaded(cfg); };
  } else {
    const workloads::GemmVersion& v = gemm_version_named(version);
    spec.kernel = [cfg, build = v.build](SplitMix64&) { return build(cfg); };
  }
  const int dim = cfg.dim;
  spec.bind = [dim](core::Session& s, HostBuffers& bufs, SplitMix64& rng) {
    auto& a = bufs.f32(workloads::random_matrix(dim, rng.next()));
    auto& b = bufs.f32(workloads::random_matrix(dim, rng.next()));
    auto& out = bufs.f32(std::size_t(dim) * std::size_t(dim));
    s.sim().bind_f32("A", a);
    s.sim().bind_f32("B", b);
    s.sim().bind_f32("C", out);
  };
  if (verify) {
    spec.check = [dim](const core::RunResult&, HostBuffers& bufs) {
      const auto ref = workloads::gemm_reference(bufs.f32_at(0),
                                                 bufs.f32_at(1), dim);
      const double err = workloads::max_rel_error(bufs.f32_at(2), ref);
      if (err > 1e-3) {
        fail("gemm verification failed: max rel error " + std::to_string(err));
      }
    };
  }
  return spec;
}

JobSpec make_pi_job(const Combo& c, const std::string& name, bool verify) {
  workloads::PiConfig cfg;
  cfg.steps = combo_int(c, "steps", 1000000);
  cfg.threads = int(combo_int(c, "threads", 8));
  cfg.unroll = int(combo_int(c, "unroll", 16));

  JobSpec spec;
  spec.name = name;
  spec.kernel = [cfg](SplitMix64&) { return workloads::pi_series(cfg); };
  const std::int64_t steps = cfg.steps;
  spec.bind = [steps](core::Session& s, HostBuffers& bufs, SplitMix64&) {
    auto& out = bufs.f32(1);
    s.sim().bind_f32("out", out);
    s.sim().set_arg("steps", steps);
    s.sim().set_arg("inv_steps", 1.0 / double(steps));
  };
  if (verify) {
    spec.check = [steps](const core::RunResult&, HostBuffers& bufs) {
      const double pi = double(bufs.f32_at(0)[0]) / double(steps);
      const double err = std::fabs(pi - workloads::pi_reference(steps));
      // f32 accumulation: the error grows with the step count (the paper's
      // numerical-instability observation), so the band is generous.
      if (err > 5e-3) {
        fail("pi verification failed: |err| " + std::to_string(err));
      }
    };
  }
  return spec;
}

JobSpec make_simple_job(const std::string& workload, const Combo& c,
                        const std::string& name, bool verify) {
  const std::int64_t n = combo_int(c, "n", 4096);
  const int threads = int(combo_int(c, "threads", 8));

  JobSpec spec;
  spec.name = name;
  if (workload == "vecadd") {
    spec.kernel = [n, threads](SplitMix64&) {
      return workloads::vecadd(n, threads, 4);
    };
    spec.bind = [n](core::Session& s, HostBuffers& bufs, SplitMix64& rng) {
      auto& x = bufs.f32(workloads::random_vector(n, rng.next()));
      auto& y = bufs.f32(workloads::random_vector(n, rng.next()));
      auto& z = bufs.f32(std::size_t(n));
      s.sim().bind_f32("x", x);
      s.sim().bind_f32("y", y);
      s.sim().bind_f32("z", z);
    };
    if (verify) {
      spec.check = [n](const core::RunResult&, HostBuffers& bufs) {
        for (std::int64_t i = 0; i < n; ++i) {
          const float want = bufs.f32_at(0)[std::size_t(i)] +
                             bufs.f32_at(1)[std::size_t(i)];
          if (std::fabs(bufs.f32_at(2)[std::size_t(i)] - want) > 1e-5f) {
            fail("vecadd verification failed at element " + std::to_string(i));
          }
        }
      };
    }
  } else {  // dot
    spec.kernel = [n, threads](SplitMix64&) {
      return workloads::dot(n, threads);
    };
    spec.bind = [n](core::Session& s, HostBuffers& bufs, SplitMix64& rng) {
      auto& x = bufs.f32(workloads::random_vector(n, rng.next()));
      auto& y = bufs.f32(workloads::random_vector(n, rng.next()));
      auto& out = bufs.f32(1);
      s.sim().bind_f32("x", x);
      s.sim().bind_f32("y", y);
      s.sim().bind_f32("out", out);
    };
    if (verify) {
      spec.check = [n](const core::RunResult&, HostBuffers& bufs) {
        double want = 0;
        for (std::int64_t i = 0; i < n; ++i) {
          want += double(bufs.f32_at(0)[std::size_t(i)]) *
                  double(bufs.f32_at(1)[std::size_t(i)]);
        }
        const double got = double(bufs.f32_at(2)[0]);
        if (std::fabs(got - want) > 1e-2 * std::max(1.0, std::fabs(want))) {
          fail("dot verification failed: got " + std::to_string(got) +
               " want " + std::to_string(want));
        }
      };
    }
  }
  return spec;
}

}  // namespace

ManifestRun parse_manifest(const std::string& text) {
  const KeyMap keys = parse_keys(text);

  const std::string workload = scalar(keys, "workload", "");
  if (workload.empty()) fail("manifest: missing required key 'workload'");
  if (workload != "gemm" && workload != "pi" && workload != "vecadd" &&
      workload != "dot") {
    fail(at(keys.at("workload").line) + "key 'workload': unsupported value \"" +
         workload + "\" (known: gemm, pi, vecadd, dot)");
  }

  ManifestRun run;
  run.label = scalar(keys, "label", workload);
  run.out_prefix = scalar(keys, "out", "");
  run.options.workers = int(parse_int("workers", scalar(keys, "workers", "0")));
  run.options.seed =
      std::uint64_t(parse_int("seed", scalar(keys, "seed", "1")));
  run.options.cache_dir = scalar(keys, "cache_dir", "");
  const std::int64_t cache_max =
      parse_int("cache_max_bytes", scalar(keys, "cache_max_bytes", "0"));
  if (cache_max < 0) fail("manifest: cache_max_bytes must be >= 0");
  run.options.cache_max_bytes = std::uint64_t(cache_max);

  const bool profiling =
      parse_on_off("profiling", scalar(keys, "profiling", "on"));
  const bool approx =
      parse_on_off("approx_trace", scalar(keys, "approx_trace", "off"));
  // Approx mode skips steady-state iterations, so output buffers are not
  // meaningful — functional verification is force-disabled.
  const bool verify =
      parse_on_off("verify", scalar(keys, "verify", "on")) && !approx;
  const std::int64_t start_interval =
      parse_int("thread_start_interval",
                scalar(keys, "thread_start_interval", "-1"));
  const std::int64_t max_cycles =
      parse_int("max_cycles", scalar(keys, "max_cycles", "0"));

  // Sweep axes present in the manifest, in declaration order.
  std::vector<std::string> swept;
  for (const auto& [key, kv] : keys) {
    (void)kv;
    for (const auto& sk : kSweepKeys) {
      if (key == sk) swept.push_back(key);
    }
  }
  std::sort(swept.begin(), swept.end(),
            [&](const std::string& a, const std::string& b) {
              return keys.at(a).order < keys.at(b).order;
            });

  // Cross product, last key fastest (odometer order).
  std::vector<Combo> combos(1);
  for (const auto& key : swept) {
    std::vector<Combo> next;
    for (const auto& base : combos) {
      for (const auto& v : keys.at(key).values) {
        Combo c = base;
        c[key] = v;
        next.push_back(std::move(c));
      }
    }
    combos = std::move(next);
  }

  // Only name-annotate axes that actually sweep (>1 value).
  std::vector<std::string> multi;
  for (const auto& key : swept) {
    if (keys.at(key).values.size() > 1) multi.push_back(key);
  }

  for (const Combo& c : combos) {
    const std::string name = workload + combo_suffix(c, multi);
    JobSpec spec;
    if (workload == "gemm") {
      spec = make_gemm_job(c, name, verify);
    } else if (workload == "pi") {
      spec = make_pi_job(c, name, verify);
    } else {
      spec = make_simple_job(workload, c, name, verify);
    }
    spec.run.enable_profiling = profiling;
    spec.run.sim.fast_forward = approx;
    if (c.count("sampling_period")) {
      spec.run.profiling.sampling_period =
          cycle_t(parse_int("sampling_period", c.at("sampling_period")));
    }
    if (c.count("buffer_lines")) {
      spec.run.profiling.buffer_lines =
          int(parse_int("buffer_lines", c.at("buffer_lines")));
    }
    if (c.count("thread_reordering")) {
      spec.hls.thread_reordering =
          parse_on_off("thread_reordering", c.at("thread_reordering"));
    }
    if (start_interval >= 0) {
      spec.run.sim.host.thread_start_interval = cycle_t(start_interval);
    }
    if (max_cycles > 0) spec.max_cycles = cycle_t(max_cycles);
    run.batch.add(std::move(spec));
  }

  // `select`: restrict the run to these job indices of the cross product
  // just built. Sorted and deduplicated here (Batch::run requires strict
  // ascending order); range errors point at the manifest line.
  if (const auto it = keys.find("select"); it != keys.end()) {
    std::vector<int> select;
    for (const auto& v : it->second.values) {
      const std::int64_t idx = parse_int("select", v, it->second.line);
      if (idx < 0 || idx >= std::int64_t(run.batch.size())) {
        fail(at(it->second.line) + "key 'select': job index " + v +
             " out of range (manifest expands to " +
             std::to_string(run.batch.size()) + " jobs)");
      }
      select.push_back(int(idx));
    }
    std::sort(select.begin(), select.end());
    select.erase(std::unique(select.begin(), select.end()), select.end());
    run.options.select = std::move(select);
  }
  return run;
}

ManifestRun load_manifest(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) fail("cannot open manifest: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  ManifestRun run = parse_manifest(ss.str());
  // A relative `out` is relative to the manifest, not to wherever the
  // process happens to run: resolve it so the report and its telemetry
  // sidecar land next to the manifest file.
  if (!run.out_prefix.empty() && run.out_prefix[0] != '/') {
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos) {
      run.out_prefix = path.substr(0, slash + 1) + run.out_prefix;
    }
  }
  return run;
}

void apply_approx_trace(ManifestRun& run) {
  for (int i = 0; i < int(run.batch.size()); ++i) {
    JobSpec& spec = run.batch.spec_mut(i);
    spec.run.sim.fast_forward = true;
    spec.check = nullptr;  // outputs are not meaningful in approx mode
  }
}

}  // namespace hlsprof::runner
