// The batch API: a list of JobSpecs executed across a worker pool with a
// shared design cache. Results are indexed by submission order and every
// job's RNG seed is derived from (batch seed, job index), so the metric
// content of a BatchResult is identical for any worker count — only
// wall-clock fields and which-job-compiled attribution vary.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runner/design_cache.hpp"
#include "runner/job.hpp"
#include "runner/pool.hpp"
#include "trace/streaming.hpp"

namespace hlsprof::runner {

/// Observer of each job's decoded trace stream, for live progress /
/// metrics reporting (src/live). begin_job runs on the worker thread
/// right after the design is resolved (so the observer knows the thread
/// count and sampling period); the returned sink — null to observe
/// nothing for this job — receives that job's records via
/// core::RunOptions::live_sink; end_job runs on the same worker thread
/// after the run (run_end = the timeline duration on success, 0 on
/// failure). Calls for different jobs arrive concurrently from different
/// workers; the observer locks its own shared state. Canonical report
/// bytes are identical with or without an observer.
class JobTraceObserver {
 public:
  virtual ~JobTraceObserver() = default;
  virtual trace::RecordSink* begin_job(int index, const std::string& name,
                                       int num_threads,
                                       cycle_t sampling_period) = 0;
  virtual void end_job(int index, trace::RecordSink* sink, cycle_t run_end,
                       bool ok) = 0;
};

struct BatchOptions {
  /// 0 = one worker per hardware thread. Ignored when `pool` is set.
  int workers = 0;
  /// Base seed; job i runs with SplitMix64 seeded from (seed, i) unless
  /// its spec pins an explicit seed.
  std::uint64_t seed = 1;
  /// Share a cache across batches (e.g. a sweep driver reusing designs);
  /// null = a batch-local cache.
  DesignCache* cache = nullptr;
  /// Non-empty: attach a persistent on-disk tier (DiskDesignStore) at
  /// this directory to the cache the run uses, so compiled designs
  /// survive the process and a warm re-run performs zero compiles. A
  /// shared cache that already has a disk tier keeps it (the directory
  /// here is ignored in that case).
  std::string cache_dir;
  /// LRU size cap for the on-disk tier (bytes, evicted on open);
  /// 0 = unbounded. Only meaningful with a non-empty cache_dir.
  std::uint64_t cache_max_bytes = 0;
  /// Run the batch's jobs on this already-running pool instead of
  /// creating one per run() call — the serving daemon's mode, where one
  /// resident pool executes every request's jobs and worker threads are
  /// never re-created per request. run() still blocks until exactly this
  /// batch's jobs finish (other work sharing the pool is not waited on).
  /// Null = the classic per-run pool of `workers` threads.
  Pool* pool = nullptr;
  /// Non-empty: run only these job indices (strictly ascending, each in
  /// [0, size())). Every selected job keeps its original index and the
  /// seed derived from it, so its JobResult is byte-for-byte the slice a
  /// full run would have produced — the shard coordinator's contract.
  /// BatchResult::jobs then holds exactly the selected jobs, in index
  /// order. Empty = run everything.
  std::vector<int> select;
  /// Called once per finished job, from the worker thread that ran it
  /// (concurrently across jobs — the callback must lock its own state).
  /// Drives live progress reporting; null = off.
  std::function<void(const JobResult&)> on_job_done;
  /// Live trace observer (see JobTraceObserver); null = off.
  JobTraceObserver* observer = nullptr;
};

struct BatchResult {
  std::vector<JobResult> jobs;  // index order == Batch::add() order
  int workers = 0;
  double wall_ms = 0.0;
  long long cache_hits = 0;
  long long cache_misses = 0;

  int count(JobStatus s) const;
  bool all_ok() const { return count(JobStatus::ok) == int(jobs.size()); }
};

class Batch {
 public:
  /// Returns the job's index (== its position in BatchResult::jobs).
  int add(JobSpec spec);

  std::size_t size() const { return jobs_.size(); }
  const JobSpec& spec(int index) const { return jobs_.at(std::size_t(index)); }
  /// Mutable access for post-parse overrides (e.g. the CLI's
  /// --approx-trace rewriting manifest-built jobs before run()).
  JobSpec& spec_mut(int index) { return jobs_.at(std::size_t(index)); }

  /// Execute every job. Job failures (exceptions anywhere in the factory /
  /// compile / run / check chain) are captured into the corresponding
  /// JobResult; run() itself only throws on runner-internal errors.
  /// `const` on purpose: the same batch can run repeatedly (e.g. at
  /// different worker counts) with identical results.
  BatchResult run(const BatchOptions& options = BatchOptions{}) const;

  /// Deterministic seed of job `index` under batch seed `base`.
  static std::uint64_t job_seed(std::uint64_t base, int index);

 private:
  std::vector<JobSpec> jobs_;
};

/// Rewrite the result's cache accounting to its deterministic,
/// batch-relative form: within the job list, the first job to use each
/// design is the miss, later jobs are hits. For a run against a fresh
/// cache this reproduces the real counters; for a warm or shared cache
/// (the serving daemon) and for reports merged from per-shard runs (each
/// with its own process-local cache) it is what makes canonical bytes
/// independent of who actually compiled. Jobs that never produced a
/// design key (failed before compile) are not counted.
void rebase_cache_stats(BatchResult& result);

}  // namespace hlsprof::runner
