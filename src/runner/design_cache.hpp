// Content-addressed, two-tier cache of compiled designs. The key is a
// stable hash of the kernel's IR dump plus every HLS option that
// influences compilation, so a parameter sweep that re-runs one design
// under many RunOptions compiles it exactly once — including under
// concurrency, where workers requesting an in-flight key block on the
// one compile instead of duplicating it.
//
// Tier 1 is the in-memory single-flight map. Tier 2 (optional, see
// attach_disk) is a content-addressed on-disk store: an in-memory miss
// first tries to deserialize the design from disk, and only compiles —
// then writes the entry back — when the disk also misses. The disk tier
// changes only *how* a tier-1 miss is satisfied, never whether it is
// one, so CacheStats::hits/misses (and the canonical batch reports that
// include them) are identical with the disk tier cold, warm, or absent.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "hls/compiler.hpp"
#include "hls/design.hpp"
#include "ir/kernel.hpp"
#include "runner/disk_store.hpp"

namespace hlsprof::runner {

struct CacheStats {
  long long hits = 0;    // served from memory (or joined an in-flight compile)
  long long misses = 0;  // fell through the in-memory tier
  // Of the misses, how the design was materialized (both stay zero when
  // no disk store is attached):
  long long disk_hits = 0;    // deserialized from the on-disk tier
  long long disk_misses = 0;  // went all the way to a compile
};

class DesignCache {
 public:
  struct Entry {
    std::shared_ptr<const hls::Design> design;
    std::uint64_t key = 0;
    bool hit = false;       // served by the in-memory tier
    bool disk_hit = false;  // in-memory miss satisfied by the disk tier
  };

  /// Stable content key of (kernel IR, HLS options).
  static std::uint64_t key_of(const ir::Kernel& kernel,
                              const hls::HlsOptions& options);

  /// Return the cached design for this content, compiling on first use.
  /// Concurrent callers with the same key share one compile: exactly one
  /// caller misses (and loads from disk or compiles), the rest hit. If
  /// the compile throws, the error propagates to every waiting caller
  /// and the entry is dropped so a later request can retry.
  Entry get_or_compile(ir::Kernel kernel, const hls::HlsOptions& options);

  /// Attach (or replace) the on-disk tier. Runs the store's open-time
  /// LRU eviction pass; throws hlsprof::Error if the directory cannot
  /// be created. Entries already in memory are unaffected.
  void attach_disk(DiskDesignStore::Options options);

  /// The attached disk tier, or nullptr (the default).
  std::shared_ptr<const DiskDesignStore> disk() const;

  CacheStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  using Future = std::shared_future<std::shared_ptr<const hls::Design>>;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Future> map_;
  /// Wall-clock cost of each performed compile (telemetry only): a later
  /// hit on the key credits this much to cache.compile_us_saved.
  std::unordered_map<std::uint64_t, std::uint64_t> compile_us_;
  CacheStats stats_;
  std::shared_ptr<DiskDesignStore> disk_;
};

}  // namespace hlsprof::runner
