// Content-addressed cache of compiled designs. The key is a stable hash
// of the kernel's IR dump plus every HLS option that influences
// compilation, so a parameter sweep that re-runs one design under many
// RunOptions compiles it exactly once — including under concurrency,
// where workers requesting an in-flight key block on the one compile
// instead of duplicating it.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "hls/compiler.hpp"
#include "hls/design.hpp"
#include "ir/kernel.hpp"

namespace hlsprof::runner {

struct CacheStats {
  long long hits = 0;    // served from cache (or joined an in-flight compile)
  long long misses = 0;  // performed the compile
};

class DesignCache {
 public:
  struct Entry {
    std::shared_ptr<const hls::Design> design;
    std::uint64_t key = 0;
    bool hit = false;
  };

  /// Stable content key of (kernel IR, HLS options).
  static std::uint64_t key_of(const ir::Kernel& kernel,
                              const hls::HlsOptions& options);

  /// Return the cached design for this content, compiling on first use.
  /// Concurrent callers with the same key share one compile: exactly one
  /// caller misses (and compiles), the rest hit. If the compile throws,
  /// the error propagates to every waiting caller and the entry is
  /// dropped so a later request can retry.
  Entry get_or_compile(ir::Kernel kernel, const hls::HlsOptions& options);

  CacheStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  using Future = std::shared_future<std::shared_ptr<const hls::Design>>;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Future> map_;
  /// Wall-clock cost of each performed compile (telemetry only): a later
  /// hit on the key credits this much to cache.compile_us_saved.
  std::unordered_map<std::uint64_t, std::uint64_t> compile_us_;
  CacheStats stats_;
};

}  // namespace hlsprof::runner
