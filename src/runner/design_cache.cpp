#include "runner/design_cache.hpp"

#include <chrono>
#include <utility>

#include "common/hash.hpp"
#include "ir/printer.hpp"
#include "telemetry/telemetry.hpp"

namespace hlsprof::runner {

namespace {

void hash_area(Fnv1a64& h, const hls::Area& a) {
  h.f64(a.alm).f64(a.ff).f64(a.dsp).f64(a.bram_bits);
}

// Every field of HlsOptions that influences compile() output must be fed
// in here; a missed field would alias distinct designs onto one key.
void hash_options(Fnv1a64& h, const hls::HlsOptions& o) {
  const hls::ResourceLibrary& lib = o.lib;
  h.i64(lib.lat_int_alu).i64(lib.lat_int_mul).i64(lib.lat_int_div);
  h.i64(lib.lat_fadd).i64(lib.lat_fmul).i64(lib.lat_fdiv);
  h.i64(lib.lat_cast).i64(lib.lat_local_mem).i64(lib.lat_shuffle);
  h.i64(lib.lat_reduce_per_level).i64(lib.ext_assumed_min);
  hash_area(h, lib.area_int_alu);
  hash_area(h, lib.area_int_mul);
  hash_area(h, lib.area_int_div);
  hash_area(h, lib.area_fadd);
  hash_area(h, lib.area_fmul);
  hash_area(h, lib.area_fdiv);
  hash_area(h, lib.area_cast);
  hash_area(h, lib.area_shuffle);
  hash_area(h, lib.area_mem_port);

  const hls::InfraCosts& infra = o.infra;
  hash_area(h, infra.platform_shell);
  hash_area(h, infra.avalon_master_per_thread);
  hash_area(h, infra.avalon_slave);
  hash_area(h, infra.bus_per_port);
  hash_area(h, infra.controller_per_stage);
  hash_area(h, infra.hts_per_reordering_stage);
  hash_area(h, infra.semaphore);
  hash_area(h, infra.preloader);
  h.f64(infra.ff_per_live_bit).f64(infra.alm_per_live_bit);
  h.f64(infra.context_bram_bits_per_thread_bit);

  const hls::FmaxModel& fmax = o.fmax;
  h.f64(fmax.base_mhz).f64(fmax.alm_penalty_per_log2);
  h.f64(fmax.port_penalty).f64(fmax.floor_mhz);

  h.boolean(o.enable_preloader).boolean(o.thread_reordering);
}

/// Cache telemetry handles, resolved once per process. These aggregate
/// over every DesignCache instance (the registry is process-wide).
struct CacheMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& singleflight_waits;
  telemetry::Counter& compile_us_saved;
  static CacheMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static CacheMetrics m{
        reg.counter("cache.hits"),
        reg.counter("cache.misses"),
        reg.counter("cache.singleflight_waits"),
        reg.counter("cache.compile_us_saved", "us"),
    };
    return m;
  }
};

}  // namespace

std::uint64_t DesignCache::key_of(const ir::Kernel& kernel,
                                  const hls::HlsOptions& options) {
  Fnv1a64 h;
  h.str(ir::print(kernel));
  // The printer focuses on the control/op structure; fold in the kernel
  // header fields explicitly in case a future printer elides one.
  h.str(kernel.name).i64(kernel.num_threads).i64(kernel.num_loops);
  h.i64(kernel.num_locks);
  hash_options(h, options);
  return h.digest();
}

DesignCache::Entry DesignCache::get_or_compile(
    ir::Kernel kernel, const hls::HlsOptions& options) {
  auto& reg = telemetry::Registry::global();
  Entry entry;
  entry.key = key_of(kernel, options);

  std::promise<std::shared_ptr<const hls::Design>> promise;
  Future future;
  bool compile_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(entry.key);
    if (it != map_.end()) {
      future = it->second;
      entry.hit = true;
      ++stats_.hits;
    } else {
      future = promise.get_future().share();
      map_.emplace(entry.key, future);
      compile_here = true;
      ++stats_.misses;
    }
  }

  if (compile_here) {
    if (reg.enabled()) CacheMetrics::get().misses.add(1);
    std::shared_ptr<DiskDesignStore> disk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      disk = disk_;
    }
    try {
      // Tier 2: a deserialized entry replaces the compile entirely. Any
      // kind of bad entry (truncated, corrupt, stale build) is a plain
      // nullptr here, and the compile below rewrites it.
      std::shared_ptr<const hls::Design> from_disk =
          disk != nullptr ? disk->load(entry.key) : nullptr;
      if (from_disk != nullptr) {
        entry.disk_hit = true;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.disk_hits;
        }
        promise.set_value(std::move(from_disk));
        entry.design = future.get();
        return entry;
      }
      if (disk != nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_misses;
      }
      telemetry::Span span(reg, "cache.compile", "runner");
      const std::uint64_t t0 = reg.enabled() ? reg.now_us() : 0;
      auto compiled = std::make_shared<const hls::Design>(
          hls::compile(std::move(kernel), options));
      if (disk != nullptr) disk->store(entry.key, *compiled);
      promise.set_value(std::move(compiled));
      if (reg.enabled()) {
        std::lock_guard<std::mutex> lock(mu_);
        compile_us_[entry.key] = reg.now_us() - t0;
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
      {
        std::lock_guard<std::mutex> lock(mu_);
        map_.erase(entry.key);
      }
      future.get();  // rethrow for this caller
    }
  } else if (reg.enabled()) {
    CacheMetrics& m = CacheMetrics::get();
    m.hits.add(1);
    // A hit whose compile is still in flight: this caller blocks on the
    // one compile instead of duplicating it (the single-flight path).
    if (future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      m.singleflight_waits.add(1);
    }
  }

  entry.design = future.get();  // waits for / rethrows an in-flight compile

  if (entry.hit && reg.enabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = compile_us_.find(entry.key);
    if (it != compile_us_.end()) {
      CacheMetrics::get().compile_us_saved.add(
          static_cast<long long>(it->second));
    }
  }
  return entry;
}

void DesignCache::attach_disk(DiskDesignStore::Options options) {
  // Construct outside the lock: opening runs directory creation and the
  // eviction pass, neither of which needs (or should hold) the map mutex.
  auto store = std::make_shared<DiskDesignStore>(std::move(options));
  std::lock_guard<std::mutex> lock(mu_);
  disk_ = std::move(store);
}

std::shared_ptr<const DiskDesignStore> DesignCache::disk() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_;
}

CacheStats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DesignCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void DesignCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  compile_us_.clear();
  stats_ = CacheStats{};
}

}  // namespace hlsprof::runner
