#include "runner/batch.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "paraver/analysis.hpp"
#include "runner/pool.hpp"
#include "telemetry/telemetry.hpp"

namespace hlsprof::runner {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void fill_metrics(JobResult& out, const core::Session& session,
                  const core::RunResult& r) {
  const hls::Design& d = session.design();
  out.fmax_mhz = d.fmax_mhz;
  out.alm = d.area.alm;
  out.bram_bits = d.area.bram_bits;
  out.num_threads = d.stats.num_threads;

  out.total_cycles = r.sim.total_cycles;
  out.kernel_cycles = r.sim.kernel_cycles;
  out.stall_cycles = r.sim.total_stall_cycles();
  out.fp_ops = r.sim.total_fp_ops();
  out.gflops = paraver::gflops(out.fp_ops, r.sim.total_cycles, d.fmax_mhz);
  out.row_hit_rate = r.sim.row_hit_rate;

  out.has_trace = r.has_trace;
  if (r.has_trace) {
    const auto st = paraver::summarize_states(r.timeline);
    out.state_idle = st.idle;
    out.state_running = st.running;
    out.state_critical = st.critical;
    out.state_spinning = st.spinning;
    out.state_records = r.state_records;
    out.event_records = r.event_records;
    out.flush_bursts = r.flush_bursts;
    out.trace_bytes = r.trace_bytes;
    out.peak_trace_buffer_bytes = r.peak_trace_buffer_bytes;
    const auto oh = session.overhead();
    out.overhead_alm_pct = oh.alm_pct;
    out.overhead_register_pct = oh.register_pct;
  }
}

JobResult run_job(const JobSpec& spec, int index, std::uint64_t seed,
                  DesignCache& cache, JobTraceObserver* observer) {
  auto& reg = telemetry::Registry::global();
  telemetry::Span span(reg, "job:" + spec.name, "runner");
  JobResult out;
  out.index = index;
  out.name = spec.name;
  out.seed = seed;
  trace::RecordSink* live = nullptr;
  bool observed = false;
  cycle_t observed_end = 0;
  const auto t0 = Clock::now();
  try {
    HLSPROF_CHECK(spec.kernel != nullptr, "JobSpec '" + spec.name +
                                              "' has no kernel factory");
    SplitMix64 rng(seed);
    ir::Kernel kernel = spec.kernel(rng);

    DesignCache::Entry entry = cache.get_or_compile(std::move(kernel),
                                                    spec.hls);
    out.design_key = entry.key;
    out.cache_hit = entry.hit;

    core::RunOptions opts = spec.run;
    if (spec.max_cycles != 0) opts.sim.max_cycles = spec.max_cycles;
    if (observer != nullptr) {
      live = observer->begin_job(index, spec.name,
                                 entry.design->kernel.num_threads,
                                 opts.profiling.sampling_period);
      observed = true;
      opts.live_sink = live;
    }

    core::Session session(entry.design, opts);
    HostBuffers buffers;
    if (spec.bind) spec.bind(session, buffers, rng);
    const core::RunResult r = session.run();
    observed_end = r.timeline.duration;
    fill_metrics(out, session, r);
    if (spec.check) spec.check(r, buffers);
    out.status = JobStatus::ok;
  } catch (const std::exception& e) {
    out.status = JobStatus::failed;
    out.error = e.what();
  } catch (...) {
    out.status = JobStatus::failed;
    out.error = "unknown exception";
  }
  out.wall_ms = ms_since(t0);
  if (out.status == JobStatus::ok && spec.soft_timeout_ms > 0 &&
      out.wall_ms > spec.soft_timeout_ms) {
    out.status = JobStatus::timed_out;
    out.error = "exceeded soft wall-clock budget";
  }
  if (observed) {
    observer->end_job(index, live, observed_end,
                      out.status == JobStatus::ok);
  }
  if (reg.enabled()) {
    reg.counter("runner.jobs").add(1);
    if (out.status != JobStatus::ok) reg.counter("runner.jobs_failed").add(1);
    reg.histogram("runner.job_ms", telemetry::exp_bounds(1.0, 2.0, 16), "ms")
        .observe(out.wall_ms);
  }
  return out;
}

}  // namespace

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::ok: return "ok";
    case JobStatus::failed: return "failed";
    case JobStatus::timed_out: return "timed_out";
  }
  return "?";
}

int BatchResult::count(JobStatus s) const {
  int n = 0;
  for (const auto& j : jobs) n += (j.status == s) ? 1 : 0;
  return n;
}

int Batch::add(JobSpec spec) {
  jobs_.push_back(std::move(spec));
  return int(jobs_.size()) - 1;
}

std::uint64_t Batch::job_seed(std::uint64_t base, int index) {
  // Index-keyed (not draw-order-keyed) derivation: job i's stream is the
  // same no matter which worker picks it up or in what order.
  SplitMix64 mixer(base ^ (0x9e3779b97f4a7c15ULL * std::uint64_t(index + 1)));
  return mixer.next();
}

BatchResult Batch::run(const BatchOptions& options) const {
  auto& reg = telemetry::Registry::global();
  telemetry::Span batch_span(reg, "batch.run", "runner");

  // Resolve the job selection: the indices to run, ascending. A selected
  // job keeps its original index (and therefore its derived seed), so the
  // results are the exact slice of a full run.
  std::vector<int> indices;
  if (options.select.empty()) {
    indices.resize(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) indices[i] = int(i);
  } else {
    indices = options.select;
    int prev = -1;
    for (const int idx : indices) {
      if (idx < 0 || idx >= int(jobs_.size())) {
        fail("batch select: job index " + std::to_string(idx) +
             " out of range (batch has " + std::to_string(jobs_.size()) +
             " jobs)");
      }
      if (idx <= prev) {
        fail("batch select: indices must be strictly ascending (got " +
             std::to_string(idx) + " after " + std::to_string(prev) + ")");
      }
      prev = idx;
    }
  }

  BatchResult result;
  result.jobs.resize(indices.size());
  result.workers = options.pool != nullptr
                       ? options.pool->workers()
                       : Pool::resolve_workers(options.workers);
  if (reg.enabled()) {
    reg.gauge("runner.workers", "threads").set(double(result.workers));
  }

  DesignCache local_cache;
  DesignCache& cache = options.cache != nullptr ? *options.cache : local_cache;
  if (!options.cache_dir.empty() && cache.disk() == nullptr) {
    cache.attach_disk({options.cache_dir, options.cache_max_bytes});
  }
  const CacheStats before = cache.stats();

  const auto t0 = std::chrono::steady_clock::now();
  const auto& on_done = options.on_job_done;
  if (options.pool != nullptr) {
    // Shared-pool mode: the pool serves other batches too, so Pool::wait()
    // (which waits for global idleness) is wrong — track completion of
    // exactly this batch's tasks.
    struct Remaining {
      std::mutex mu;
      std::condition_variable cv;
      std::size_t n;
    } remaining{{}, {}, indices.size()};
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const int i = indices[k];
      const JobSpec& spec = jobs_[std::size_t(i)];
      JobResult& slot = result.jobs[k];
      const std::uint64_t seed =
          spec.seed != 0 ? spec.seed : job_seed(options.seed, i);
      JobTraceObserver* observer = options.observer;
      options.pool->submit([&spec, &slot, &cache, &remaining, &on_done,
                            observer, i, seed] {
        slot = run_job(spec, i, seed, cache, observer);
        if (on_done) on_done(slot);
        std::lock_guard<std::mutex> lock(remaining.mu);
        if (--remaining.n == 0) remaining.cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(remaining.mu);
    remaining.cv.wait(lock, [&remaining] { return remaining.n == 0; });
  } else {
    Pool pool(result.workers);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const int i = indices[k];
      const JobSpec& spec = jobs_[std::size_t(i)];
      JobResult& slot = result.jobs[k];
      const std::uint64_t seed =
          spec.seed != 0 ? spec.seed : job_seed(options.seed, i);
      JobTraceObserver* observer = options.observer;
      pool.submit([&spec, &slot, &cache, &on_done, observer, i, seed] {
        slot = run_job(spec, i, seed, cache, observer);
        if (on_done) on_done(slot);
      });
    }
    pool.wait();
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  const CacheStats after = cache.stats();
  result.cache_hits = after.hits - before.hits;
  result.cache_misses = after.misses - before.misses;
  return result;
}

void rebase_cache_stats(BatchResult& result) {
  std::set<std::uint64_t> seen;
  long long hits = 0;
  long long misses = 0;
  for (JobResult& job : result.jobs) {
    if (job.design_key == 0) continue;
    if (seen.insert(job.design_key).second) {
      ++misses;
      job.cache_hit = false;
    } else {
      ++hits;
      job.cache_hit = true;
    }
  }
  result.cache_hits = hits;
  result.cache_misses = misses;
}

}  // namespace hlsprof::runner
