// Multi-process shard coordinator for the batch runner. Splits a
// manifest's expanded job list into per-shard sub-manifests (via the
// `select` control key), runs each shard in a child `hlsprof-run`
// process — or submits it to a running hlsprof-serve daemon — and
// merges the per-shard canonical reports into one BatchResult whose
// report bytes are identical to a single-process run of the same
// manifest:
//
//  - every selected job keeps its original index and index-derived
//    seed, so each shard produces the exact slice a full run would;
//  - merged cache counters are rebased (rebase_cache_stats), the same
//    deterministic accounting the serving daemon reports, equal to a
//    cold single-process run's real counters;
//  - shards run --canonical, so no wall-clock ever reaches the bytes.
//
// Fault handling: a shard that dies (non-zero exit, signal, unreadable
// report) has its not-yet-merged jobs re-dispatched to a fresh shard; a
// straggler (elapsed beyond a configurable multiple of the median
// completed-shard wall time) gets a speculative backup shard for its
// outstanding jobs while the original keeps running. Whichever copy of
// a job reports first wins; later copies are counted as duplicates and
// dropped — safe because job content is deterministic, so every copy
// carries identical bytes. See docs/SHARDING.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/batch.hpp"

namespace hlsprof::runner {

enum class ShardStrategy {
  /// Contiguous index ranges (cheapest sub-manifests to eyeball).
  block,
  /// Index i goes to shard i % shards (default: manifests commonly
  /// order jobs by increasing size, so striping balances better).
  round_robin,
};

/// Parse "block" / "round_robin" (also accepts "round-robin"); throws
/// hlsprof::Error on anything else.
ShardStrategy shard_strategy_from_name(const std::string& name);

struct ShardOptions {
  /// Number of shards to launch for the initial split (>= 1).
  int shards = 2;
  ShardStrategy strategy = ShardStrategy::round_robin;

  /// Straggler threshold: once at least two shards have finished, a
  /// still-running shard whose elapsed time exceeds
  /// `straggler_factor * median(finished shard wall times)` (and
  /// `straggler_min_ms`) gets one speculative backup shard for its
  /// outstanding jobs. 0 disables speculation. Process mode only — a
  /// daemon submission cannot be abandoned mid-flight, so daemon mode
  /// re-dispatches on failure but never speculates.
  double straggler_factor = 3.0;
  /// Floor below which a shard is never called a straggler, so tiny
  /// batches don't speculate on scheduling noise.
  double straggler_min_ms = 500.0;

  /// Re-dispatch budget (dead shards + speculative backups combined);
  /// 0 = 2 * shards. Exhausting it fails the run rather than looping
  /// on a persistent fault.
  int max_redispatch = 0;

  /// Non-empty: daemon mode. Shards are submitted to these
  /// hlsprof-serve sockets round-robin instead of spawning child
  /// processes; `submit` must then be set.
  std::vector<std::string> connect;
  /// Daemon submission hook: send `manifest_text` to the daemon at
  /// `socket` as `client_name` and return the canonical report JSON;
  /// throw hlsprof::Error (or serve::ConnectError) on failure. Injected
  /// by the tool layer so this library does not depend on serve.
  std::function<std::string(const std::string& socket,
                            const std::string& manifest_text,
                            const std::string& client_name)>
      submit;

  /// Process mode: the hlsprof-run binary to exec for each shard.
  /// Empty = this process's own image (/proc/self/exe).
  std::string runner_binary;

  /// Forwarded to every shard so the fleet shares one on-disk design
  /// store (the store is multi-process safe by construction). Empty =
  /// whatever the manifest says.
  std::string cache_dir;
  std::uint64_t cache_max_bytes = 0;

  /// Worker threads per shard child; 0 = hardware concurrency divided
  /// by the shard count (at least 1), so the fleet does not oversubscribe.
  int workers_per_shard = 0;

  /// >= 0: override the manifest's batch seed (like --seed).
  long long seed_override = -1;

  /// Force `approx_trace = on` in every sub-manifest (like the CLI's
  /// --approx-trace): shards run in analytical fast-forward mode with
  /// functional verification disabled.
  bool approx_trace = false;

  /// Non-empty, process mode: each shard child writes its telemetry
  /// snapshot to `<prefix><shard-id>.json` (--telemetry-out), so fleet
  /// behaviour — e.g. zero hls.compiles across a warm shared-cache run —
  /// is observable per child. Telemetry never touches report bytes.
  std::string child_telemetry_prefix;

  /// Suppress per-job progress lines on stderr.
  bool quiet = false;

  /// Progress sink replacing the default stderr writer: each call hands
  /// over one batch of already-newline-terminated progress lines
  /// (possibly several at once — the coordinator batches per event-loop
  /// drain and writes each batch atomically). Called on the coordinator
  /// thread. Null = write batches to stderr.
  std::function<void(const std::string& lines)> emit_progress;

  /// Process mode: pass --live-lines to every shard child so it emits
  /// `##hlsprof-live` totals lines on its progress pipe (the fleet live
  /// view's feed).
  bool child_live_lines = false;
  /// Called from shard *reader threads* with every non-progress
  /// `##hlsprof-` line a child printed (i.e. `##hlsprof-live` lines
  /// under child_live_lines). The receiver must do its own locking.
  std::function<void(int shard, const std::string& line)> on_child_line;

  /// Non-empty, process mode: every shard child additionally writes a
  /// Chrome/Perfetto trace of its own telemetry, and the coordinator
  /// merges all child traces plus its own into ONE file at this path —
  /// per-shard tracks namespaced ("shard-K"), child clocks rebased onto
  /// the coordinator's telemetry epoch so the fleet timeline lines up.
  /// Ignored in daemon mode (daemons outlive the submission; their
  /// telemetry belongs to the daemon, not the run).
  std::string chrome_trace_out;

  /// Test hook, process mode: called right after each fork with the
  /// shard id and child pid (e.g. to SIGKILL a shard mid-run and prove
  /// re-dispatch). Called on the coordinator thread.
  std::function<void(int shard, int pid)> on_spawn;
};

struct ShardResult {
  /// Jobs in original index order, cache counters rebased. workers /
  /// wall_ms describe the fleet (total child workers, coordinator
  /// wall) and never reach canonical report bytes.
  BatchResult merged;
  std::string label;       // from the manifest
  std::string out_prefix;  // from the manifest (CLI may override)
  int shards_launched = 0;      // including re-dispatched ones
  int shards_redispatched = 0;  // dead-shard replacements + backups
  int duplicate_jobs = 0;       // dropped later copies of merged jobs
};

/// Run `manifest_text` sharded. Throws hlsprof::Error on coordinator
/// failures (unrunnable binary, re-dispatch budget exhausted, a job
/// that no shard ever delivered); per-job failures land in the merged
/// result like any batch run.
ShardResult run_sharded_text(const std::string& manifest_text,
                             const ShardOptions& options);

/// load_manifest + run_sharded_text.
ShardResult run_sharded(const std::string& manifest_path,
                        const ShardOptions& options);

// ---- building blocks (exposed for tests) -------------------------------

/// Partition `universe` (ascending job indices) into `shards` disjoint,
/// covering index lists; entries may be empty when there are fewer jobs
/// than shards (empty shards are simply not launched).
std::vector<std::vector<int>> split_indices(const std::vector<int>& universe,
                                            int shards,
                                            ShardStrategy strategy);

/// Rewrite manifest text for one shard: drop any existing `select`
/// (its values are original indices — the shard's own selection
/// replaces, never composes with, a previous one), drop `out` (shards
/// must not clobber the user's report files), drop `seed` when
/// `seed_override` >= 0, then append the shard's `select` line (and
/// `seed`, and `approx_trace = on` when `approx_trace` is set). Indices
/// must be non-empty and ascending.
std::string make_sub_manifest(const std::string& manifest_text,
                              const std::vector<int>& indices,
                              long long seed_override = -1,
                              bool approx_trace = false);

/// Parse a canonical batch-report JSON document (report_json output)
/// back into per-job results. Exact: seeds and design keys round-trip
/// through the report's uint64/hex encodings, doubles through %.17g.
/// Throws hlsprof::Error on schema mismatches.
std::vector<JobResult> parse_report_jobs(const std::string& report_json_text);

/// Merge per-shard job lists into one result covering exactly
/// `expected_indices` (ascending original indices). Shards are
/// consumed in list order and the first copy of each index wins;
/// later copies count into `*duplicates` (may be null). Deterministic
/// because duplicate copies of a job are byte-identical. Cache
/// counters are rebased. Throws if any expected index never appears.
BatchResult merge_job_results(
    const std::vector<std::vector<JobResult>>& per_shard,
    const std::vector<int>& expected_indices, int* duplicates = nullptr);

/// The per-job progress line a shard child emits on stdout under
/// --progress and the coordinator's parser for it. Format:
///   ##hlsprof-job index=I status=S cycles=N running=F spinning=F name=N...
/// (name extends to end of line; it may contain spaces). The metric
/// fields carry the job's live summary — cycle count and running /
/// spinning state shares — so the coordinator can show per-job metrics
/// without waiting for the shard's report. The parser accepts lines
/// without them (older children), leaving the metrics zero.
struct ProgressLine {
  int index = -1;
  std::string status;
  std::string name;
  std::uint64_t cycles = 0;
  double running = 0.0;
  double spinning = 0.0;
};
std::string format_progress_line(const JobResult& job);
bool parse_progress_line(const std::string& line, ProgressLine* out);
/// Compatibility form: index/status/name only.
bool parse_progress_line(const std::string& line, int* index,
                         std::string* status, std::string* name);

}  // namespace hlsprof::runner
