#include "runner/disk_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <string_view>
#include <utility>
#include <vector>

#include "common/build_info.hpp"
#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/hash.hpp"
#include "hls/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace hlsprof::runner {

namespace fs = std::filesystem;

namespace {

// Entry file layout (all little-endian via common/bytes):
//   8 bytes   magic "HLSPROFD"
//   u32       store version (kStoreVersion)
//   str       build-compatibility stamp (see compat_stamp())
//   u64       design key (must match the file name's hex digest)
//   u64       FNV-1a hash of the payload bytes
//   u64       payload size in bytes
//   payload   hls::serialize_design bytes (self-versioned again)
// Readers verify every field before touching the payload; any mismatch
// is a miss. The double versioning is deliberate: the store version
// covers this header, kDesignFormatVersion covers the payload encoding.
constexpr char kMagic[8] = {'H', 'L', 'S', 'P', 'R', 'O', 'F', 'D'};
constexpr std::uint32_t kStoreVersion = 1;

constexpr const char* kEntrySuffix = ".design";
constexpr const char* kTmpPrefix = ".tmp-";
/// A temp file this old is a crashed writer's leftover, not a live
/// write: store() publishes within the time of one compile (seconds).
/// Younger temp files may belong to a sibling in a shard fleet whose
/// children open the shared store while others are already writing.
constexpr std::int64_t kTmpMaxAgeSeconds = 600;

/// Entries are only valid for the build that wrote them: the payload
/// layout is struct-derived, so compiler/version drift must invalidate
/// the store (a stale entry is a miss, never a wrong answer). The
/// serialize-format version is folded in so bumping it invalidates old
/// stores even when the binary stamp happens to match.
std::string compat_stamp() {
  return build_info_string() + " fmt" +
         std::to_string(hls::kDesignFormatVersion);
}

struct StoreMetrics {
  telemetry::Counter& disk_hits;
  telemetry::Counter& disk_misses;
  telemetry::Counter& evictions;
  telemetry::Counter& bytes_written;
  telemetry::Counter& deserialize_us;
  static StoreMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static StoreMetrics m{
        reg.counter("cache.disk_hits"),
        reg.counter("cache.disk_misses"),
        reg.counter("cache.evictions"),
        reg.counter("cache.bytes_written", "bytes"),
        reg.counter("cache.deserialize_us", "us"),
    };
    return m;
  }
};

/// Whole-file read; empty optional on any I/O error.
bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return false;
  out = std::move(data);
  return true;
}

/// Last-use time of an entry for the LRU: max(atime, mtime). atime alone
/// is unreliable (noatime/relatime mounts), so hits also bump mtime via
/// utimensat — whichever the filesystem keeps fresher wins.
struct EntryInfo {
  fs::path path;
  std::uint64_t size = 0;
  std::int64_t last_use = 0;  // seconds since epoch
};

bool stat_entry(const fs::path& p, EntryInfo& out) {
  struct ::stat st{};
  if (::stat(p.c_str(), &st) != 0) return false;
  out.path = p;
  out.size = std::uint64_t(st.st_size);
  out.last_use = std::max<std::int64_t>(st.st_atime, st.st_mtime);
  return true;
}

}  // namespace

std::string DiskDesignStore::entry_path(const std::string& dir,
                                        std::uint64_t key) {
  return (fs::path(dir) / (hex_digest(key) + kEntrySuffix)).string();
}

DiskDesignStore::DiskDesignStore(Options options)
    : options_(std::move(options)) {
  HLSPROF_CHECK(!options_.dir.empty(), "disk cache: empty directory");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec || !fs::is_directory(options_.dir)) {
    fail("disk cache: cannot create directory " + options_.dir + ": " +
         ec.message());
  }
  approx_bytes_ = scan_and_evict_locked(/*clean_tmp=*/true);
}

std::uint64_t DiskDesignStore::scan_and_evict_locked(bool clean_tmp) {
  std::error_code ec;
  std::vector<EntryInfo> entries;
  std::uint64_t total = 0;
  for (const auto& de : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = de.path().filename().string();
    if (name.rfind(kTmpPrefix, 0) == 0) {
      // A crashed writer's leftover was never published and is safe to
      // drop at open — but only once demonstrably stale. A shard
      // fleet's children open this store while siblings may be
      // mid-write; deleting a live temp file would make the sibling's
      // rename silently fail and lose the entry. Mid-run passes leave
      // temp files alone entirely.
      if (clean_tmp) {
        struct ::stat st{};
        if (::stat(de.path().c_str(), &st) == 0 &&
            std::int64_t(st.st_mtime) + kTmpMaxAgeSeconds <
                std::int64_t(::time(nullptr))) {
          fs::remove(de.path(), ec);
        }
      }
      continue;
    }
    if (name.size() <= std::string_view(kEntrySuffix).size() ||
        name.substr(name.size() - std::string_view(kEntrySuffix).size()) !=
            kEntrySuffix) {
      continue;  // foreign file; leave it alone
    }
    EntryInfo info;
    if (stat_entry(de.path(), info)) {
      total += info.size;
      entries.push_back(std::move(info));
    }
  }
  if (options_.max_bytes == 0 || total <= options_.max_bytes) return total;

  // Evict least-recently-used first until under the cap. Ties break on
  // the path for determinism.
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              if (a.last_use != b.last_use) return a.last_use < b.last_use;
              return a.path < b.path;
            });
  auto& reg = telemetry::Registry::global();
  for (const EntryInfo& e : entries) {
    if (total <= options_.max_bytes) break;
    if (!fs::remove(e.path, ec)) continue;
    total -= std::min(total, e.size);
    ++stats_.evictions;
    if (reg.enabled()) StoreMetrics::get().evictions.add(1);
  }
  return total;
}

std::shared_ptr<const hls::Design> DiskDesignStore::load(std::uint64_t key) {
  auto& reg = telemetry::Registry::global();
  const std::string path = entry_path(options_.dir, key);

  const auto miss = [&]() -> std::shared_ptr<const hls::Design> {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (reg.enabled()) StoreMetrics::get().disk_misses.add(1);
    return nullptr;
  };

  std::string data;
  if (!read_file(path, data)) return miss();

  try {
    const std::uint64_t t0 = reg.enabled() ? reg.now_us() : 0;
    ByteReader r(data);
    const std::string_view magic = r.view(sizeof kMagic);
    if (std::string_view(kMagic, sizeof kMagic) != magic) return miss();
    if (r.u32() != kStoreVersion) return miss();
    if (r.str() != compat_stamp()) return miss();
    if (r.u64() != key) return miss();
    const std::uint64_t payload_hash = r.u64();
    const std::uint64_t payload_size = r.u64();
    if (payload_size != r.remaining()) return miss();
    const std::string_view payload = r.view(std::size_t(payload_size));
    if (Fnv1a64{}.str(payload).digest() != payload_hash) return miss();

    auto design = std::make_shared<const hls::Design>(
        hls::deserialize_design(payload));
    if (reg.enabled()) {
      StoreMetrics& m = StoreMetrics::get();
      m.disk_hits.add(1);
      m.deserialize_us.add(static_cast<long long>(reg.now_us() - t0));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
    }
    // Refresh last-use (both atime and mtime) for the LRU; best-effort.
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    return design;
  } catch (...) {
    // Corrupt or incompatible entry: a miss by contract. The compile
    // that follows rewrites the file with good bytes.
    return miss();
  }
}

void DiskDesignStore::store(std::uint64_t key, const hls::Design& design) {
  auto& reg = telemetry::Registry::global();
  try {
    const std::string payload = hls::serialize_design(design);
    ByteWriter w;
    w.bytes(kMagic, sizeof kMagic);
    w.u32(kStoreVersion);
    w.str(compat_stamp());
    w.u64(key);
    w.u64(Fnv1a64{}.str(payload).digest());
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
    const std::string& blob = w.data();

    std::string tmp;
    {
      std::lock_guard<std::mutex> lock(mu_);
      tmp = (fs::path(options_.dir) /
             (kTmpPrefix + hex_digest(key) + "-" +
              std::to_string(::getpid()) + "-" + std::to_string(tmp_seq_++)))
                .string();
    }
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return;
    const bool wrote = std::fwrite(blob.data(), 1, blob.size(), f) ==
                       blob.size();
    // Flush to stable storage before publishing: after the rename the
    // entry must be complete even across a crash.
    const bool flushed = wrote && std::fflush(f) == 0 &&
                         ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    std::error_code ec;
    if (!flushed) {
      fs::remove(tmp, ec);
      return;
    }
    fs::rename(tmp, entry_path(options_.dir, key), ec);
    if (ec) {
      fs::remove(tmp, ec);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.bytes_written += static_cast<long long>(blob.size());
      // Steady-state cap enforcement: once the write estimate crosses the
      // cap, rescan and evict. This sits on the compile path (store() only
      // runs after the far more expensive compile, never on load()), and
      // the rescan amortizes: each pass frees real headroom that many
      // writes then consume before the next one triggers.
      approx_bytes_ += blob.size();
      if (options_.max_bytes != 0 && approx_bytes_ > options_.max_bytes) {
        approx_bytes_ = scan_and_evict_locked(/*clean_tmp=*/false);
      }
    }
    if (reg.enabled()) {
      StoreMetrics::get().bytes_written.add(
          static_cast<long long>(blob.size()));
    }
  } catch (...) {
    // Best-effort by contract: a failed write only costs the next run a
    // recompile.
  }
}

DiskDesignStore::Stats DiskDesignStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hlsprof::runner
