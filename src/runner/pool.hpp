// Fixed-size worker pool behind the batch runner. Deliberately minimal:
// FIFO queue, submit/wait, clean shutdown in the destructor. Jobs are
// opaque thunks — exception capture and result routing are the Batch
// layer's responsibility (a worker never dies from a throwing job).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hlsprof::runner {

class Pool {
 public:
  /// `workers` < 1 is clamped to 1. Threads start immediately.
  explicit Pool(int workers);

  /// Drains nothing: joins after the queue empties (wait() semantics).
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int workers() const { return int(threads_.size()); }

  /// Enqueue a task. Tasks that throw terminate the process (std::thread
  /// noexcept boundary) — wrap fallible work before submitting.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait();

  /// Pick a worker count: `requested` if > 0, else the hardware
  /// concurrency (at least 1).
  static int resolve_workers(int requested);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait() waits for drain
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace hlsprof::runner
