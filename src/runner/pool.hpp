// Fixed-size worker pool behind the batch runner. Deliberately minimal:
// FIFO queue, submit/wait, clean shutdown in the destructor. Jobs are
// opaque thunks — exception capture and result routing are the Batch
// layer's responsibility (a worker never dies from a throwing job).
//
// Shutdown semantics: the destructor DRAINS — every task submitted
// before destruction runs to completion before the threads join (no task
// loss, no deadlock, even with a deep queue). Callers that want to abort
// instead (e.g. a daemon told to stop hard) call cancel_pending() first,
// which discards tasks that have not started; in-flight tasks always
// finish either way.
//
// When the telemetry registry is enabled the pool reports queue-wait and
// task-latency histograms, worker busy time, and a jobs-in-flight gauge,
// and binds each worker thread to its own span track ("worker-<i>").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hlsprof::runner {

class Pool {
 public:
  /// `workers` < 1 is clamped to 1. Threads start immediately.
  explicit Pool(int workers);

  /// Drains: joins after every already-submitted task has run.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int workers() const { return int(threads_.size()); }

  /// Enqueue a task. Tasks that throw terminate the process (std::thread
  /// noexcept boundary) — wrap fallible work before submitting.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait();

  /// Discard every task still waiting in the queue (none of them will
  /// run) and return how many were dropped. In-flight tasks are
  /// unaffected — follow with wait() (or the destructor) to quiesce.
  /// This is the abort half of the drain/cancel distinction: the
  /// destructor alone finishes all queued work.
  std::size_t cancel_pending();

  /// Tasks submitted but not yet picked up by a worker (point-in-time).
  std::size_t pending() const;

  /// Pick a worker count: `requested` if > 0, else the hardware
  /// concurrency (at least 1).
  static int resolve_workers(int requested);

 private:
  struct Item {
    std::function<void()> task;
    /// Telemetry enqueue stamp (µs since registry epoch); 0 = telemetry
    /// was disabled at submit time, skip the queue-wait observation.
    std::uint64_t enq_us = 0;
  };

  void worker_loop(int index);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // wait() waits for drain
  std::deque<Item> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace hlsprof::runner
