#include "advisor/advisor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "paraver/analysis.hpp"

namespace hlsprof::advisor {

using sim::ThreadState;

const char* diagnosis_name(Diagnosis d) {
  switch (d) {
    case Diagnosis::start_overhead: return "start-overhead";
    case Diagnosis::critical_serialization: return "critical-serialization";
    case Diagnosis::memory_latency_bound: return "memory-latency-bound";
    case Diagnosis::phase_separation: return "phase-separation";
    case Diagnosis::load_imbalance: return "load-imbalance";
    case Diagnosis::compute_bound: return "compute-bound";
  }
  return "?";
}

bool Report::has(Diagnosis d) const { return find(d) != nullptr; }

const Finding* Report::find(Diagnosis d) const {
  for (const Finding& f : findings) {
    if (f.kind == d) return &f;
  }
  return nullptr;
}

std::string Report::to_text() const {
  if (findings.empty()) {
    return "advisor: no bottleneck signatures detected\n";
  }
  std::string out = "advisor findings (strongest first):\n";
  for (const Finding& f : findings) {
    out += strf("  [%-22s severity %.2f]\n", diagnosis_name(f.kind),
                f.severity);
    out += "    evidence:       " + f.evidence + "\n";
    out += "    recommendation: " + f.recommendation + "\n";
  }
  return out;
}

Report analyze(const hls::Design& design, const sim::SimResult& result,
               const trace::TimedTrace& timeline,
               const AdvisorOptions& opt) {
  HLSPROF_CHECK(!result.threads.empty(), "run has no thread statistics");
  Report report;
  auto add = [&](Diagnosis kind, double severity, std::string evidence,
                 std::string recommendation) {
    Finding f;
    f.kind = kind;
    f.severity = std::clamp(severity, 0.0, 1.0);
    f.evidence = std::move(evidence);
    f.recommendation = std::move(recommendation);
    report.findings.push_back(std::move(f));
  };

  // ---- host start overhead (paper §V-D) ---------------------------------
  cycle_t first_start = ~cycle_t{0};
  cycle_t last_start = 0;
  cycle_t busy_total = 0;
  cycle_t busy_min = ~cycle_t{0};
  cycle_t busy_max = 0;
  for (const auto& t : result.threads) {
    first_start = std::min(first_start, t.start);
    last_start = std::max(last_start, t.start);
    const cycle_t busy = t.end - t.start;
    busy_total += busy;
    busy_min = std::min(busy_min, busy);
    busy_max = std::max(busy_max, busy);
  }
  const double kernel = double(std::max<cycle_t>(1, result.kernel_cycles));
  const double stagger = double(last_start - first_start);
  if (stagger / kernel > opt.start_overhead_fraction) {
    add(Diagnosis::start_overhead, stagger / kernel,
        strf("starting the %zu hardware threads spans %.0f%% of the kernel "
             "time (%s of %s cycles)",
             result.threads.size(), 100.0 * stagger / kernel,
             with_commas(cycle_t(stagger)).c_str(),
             with_commas(result.kernel_cycles).c_str()),
        "the bottleneck is host-software communication, not the "
        "accelerator: batch more work per launch (more iterations per "
        "thread) or improve the host interface (paper SV-D)");
  }

  // ---- critical-section serialization (paper SV-C v1 -> v2) --------------
  const double crit = timeline.state_fraction(ThreadState::critical) +
                      timeline.state_fraction(ThreadState::spinning);
  if (crit > opt.critical_fraction) {
    add(Diagnosis::critical_serialization, std::min(1.0, crit * 10),
        strf("%.2f%% of thread time inside critical sections and %.2f%% "
             "spinning on the lock",
             100 * timeline.state_fraction(ThreadState::critical),
             100 * timeline.state_fraction(ThreadState::spinning)),
        "the lock extends the serial portion of the code (Amdahl): "
        "redistribute work so threads own their outputs and the critical "
        "section disappears (paper's 'No Critical Sections' step)");
  }

  // ---- memory latency boundness (paper SV-C v2 -> v3/v4) ------------------
  cycle_t stalls = result.total_stall_cycles();
  const double stall_frac =
      busy_total == 0 ? 0.0 : double(stalls) / double(busy_total);
  if (stall_frac > opt.stall_fraction) {
    const double bw = paraver::mean_bandwidth(timeline);
    add(Diagnosis::memory_latency_bound, std::min(1.0, stall_frac),
        strf("%.0f%% of busy thread-cycles are pipeline stalls on "
             "variable-latency memory operations (achieved bandwidth "
             "%.2f B/cycle)",
             100 * stall_frac, bw),
        "widen external accesses (vectorize loads, paper's 'Partial "
        "Vectorization'), or stage sub-blocks into local BRAM (paper's "
        "'Blocked' version)");
  }

  // ---- load/compute phase separation (paper Fig. 8 -> Fig. 9) --------------
  if (timeline.sampling_period > 0) {
    // Use thread 0 as the representative (all threads run the same code).
    const double overlap =
        paraver::weighted_compute_mem_overlap(timeline, 0);
    const auto fp0 = paraver::rate_series_thread(
        timeline, trace::EventKind::fp_ops, 0);
    const bool has_fp =
        std::any_of(fp0.begin(), fp0.end(), [](double v) { return v > 0; });
    const auto rd0 = paraver::rate_series_thread(
        timeline, trace::EventKind::bytes_read, 0);
    // Phase separation is only meaningful when memory traffic is a
    // substantial phase of its own, not a few incidental accesses (the
    // compute-bound pi kernel touches memory once for its reduction).
    std::size_t fp_windows = 0;
    std::size_t mem_windows = 0;
    for (double v : fp0) fp_windows += v > 0 ? 1 : 0;
    for (double v : rd0) mem_windows += v > 0 ? 1 : 0;
    const bool mem_is_a_phase =
        mem_windows >= std::max<std::size_t>(4, fp_windows / 20);
    if (has_fp && mem_is_a_phase && overlap < opt.overlap_threshold) {
      add(Diagnosis::phase_separation, 1.0 - overlap,
          strf("only %.0f%% of floating-point work overlaps memory "
               "traffic: loads and compute alternate in distinct phases",
               100 * overlap),
          "prefetch the next block while computing on the current one "
          "(double buffering, paper Fig. 5/9): independent inner loops "
          "execute concurrently in the dataflow graph");
    }
  }

  // ---- load imbalance -------------------------------------------------------
  if (busy_min > 0 &&
      double(busy_max) / double(busy_min) > opt.imbalance_ratio) {
    add(Diagnosis::load_imbalance,
        std::min(1.0, double(busy_max) / double(busy_min) / 10.0),
        strf("busiest thread works %.1fx longer than the least busy one",
             double(busy_max) / double(busy_min)),
        "rebalance the work distribution across hardware threads (check "
        "the strided decomposition against the problem size)");
  }

  // ---- the good case ---------------------------------------------------------
  if (report.findings.empty()) {
    const double run = timeline.state_fraction(ThreadState::running);
    add(Diagnosis::compute_bound, run,
        strf("threads run %.0f%% of the time with %.0f%% stalls",
             100 * run, 100 * stall_frac),
        "the accelerator is compute-bound: scale up unrolling or thread "
        "count if resources allow (the paper saturates at 8 threads)");
  }

  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.severity > b.severity;
                   });
  (void)design;
  return report;
}

}  // namespace hlsprof::advisor
