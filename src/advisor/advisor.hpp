// Profile-guided optimization advisor — the direction the paper's
// conclusion sketches ("evaluate how the collected traces can be used for
// profile-guided optimization in the HLS compiler"). Takes the compiled
// design, the run statistics, and the reconstructed timeline and produces
// ranked findings with concrete source-level recommendations — the same
// reasoning steps the paper walks through manually in §V-C/§V-D.
#pragma once

#include <string>
#include <vector>

#include "hls/design.hpp"
#include "sim/simulator.hpp"
#include "trace/timed_trace.hpp"

namespace hlsprof::advisor {

enum class Diagnosis : std::uint8_t {
  start_overhead,        // §V-D: software thread starts dominate
  critical_serialization,  // §V-C v1 -> v2: lock-limited parallelism
  memory_latency_bound,  // §V-C v2 -> v3: narrow accesses expose latency
  phase_separation,      // §V-C v4 -> v5: loads and compute alternate
  load_imbalance,        // threads finish at very different times
  compute_bound,         // datapath saturated; the good case
};

const char* diagnosis_name(Diagnosis d);

struct Finding {
  Diagnosis kind;
  /// 0..1 — how strongly the evidence supports the diagnosis (findings
  /// are reported sorted by severity, strongest first).
  double severity = 0.0;
  /// The measured quantity the diagnosis rests on, human-readable.
  std::string evidence;
  /// What the paper's methodology would do about it.
  std::string recommendation;
};

struct Report {
  std::vector<Finding> findings;  // sorted, most severe first

  bool has(Diagnosis d) const;
  const Finding* find(Diagnosis d) const;
  /// Multi-line human-readable rendition.
  std::string to_text() const;
};

/// Thresholds of the heuristics (exposed for tests and tuning).
struct AdvisorOptions {
  double start_overhead_fraction = 0.25;   // stagger / kernel time
  double critical_fraction = 0.01;         // (critical+spin) state share
  double stall_fraction = 0.25;            // stalls / busy thread-cycles
  double overlap_threshold = 0.30;         // FLOPs-under-mem below this
  double imbalance_ratio = 1.5;            // max/min per-thread busy time
};

/// Analyze one profiled run. The timeline must carry event samples
/// (profiling with events enabled); throws hlsprof::Error otherwise.
Report analyze(const hls::Design& design, const sim::SimResult& result,
               const trace::TimedTrace& timeline,
               const AdvisorOptions& options = AdvisorOptions{});

}  // namespace hlsprof::advisor
