// Hardware cost model of the profiling unit: how many registers/ALMs/BRAM
// bits the tracer adds to a given design, and its impact on the achievable
// clock (snoop fan-out lengthens the critical path). Reproduces the
// methodology of the paper's §V-B overhead study.
#pragma once

#include "hls/design.hpp"
#include "profiling/config.hpp"

namespace hlsprof::profiling {

/// Per-collector cost breakdown (the paper notes each counter contributes
/// similarly; the breakdown lets the bench verify that).
struct OverheadBreakdown {
  hls::Area state_tracker;
  hls::Area stall_counters;
  hls::Area compute_counters;
  hls::Area memory_counters;
  hls::Area flush_engine;
};

struct ProfilingOverhead {
  hls::Area delta;            // total added resources
  OverheadBreakdown parts;
  double fmax_delta_mhz = 0;  // positive = degradation
  // Relative overheads vs. the base design (what §V-B reports).
  double register_pct = 0;
  double alm_pct = 0;

  double profiled_fmax(double base_fmax) const {
    return base_fmax - fmax_delta_mhz;
  }
};

/// Tuning knobs of the overhead model (calibrated; see EXPERIMENTS.md).
struct OverheadModel {
  double alm_per_snoop_source = 14.0;
  double ff_per_counter_bit = 1.0;
  int counter_bits = 64;
  double state_tracker_alm_base = 90.0;
  double state_tracker_alm_per_thread = 6.0;
  double flush_alm = 180.0;
  double flush_ff = 260.0;
  // fmax degradation: the tracer's taps on the memory path (load/store
  // units and the stallable reordering stages) sit on the design's
  // critical path; compute-dense designs (like pi) barely degrade while
  // memory-dense designs lose up to the cap (paper: 8 MHz for the GEMM
  // designs, 1 MHz for pi).
  double fmax_c0 = 0.2;
  double fmax_per_mem_tap = 0.3;
  double fmax_cap = 8.0;
};

/// Estimate the tracer's hardware cost for `design` under `config`.
ProfilingOverhead estimate_overhead(const hls::Design& design,
                                    const ProfilingConfig& config,
                                    const OverheadModel& model = OverheadModel{});

}  // namespace hlsprof::profiling
