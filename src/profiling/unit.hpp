// The profiling unit of the paper's Fig. 1: it snoops the datapath (via
// SimHooks), records thread states on every change, aggregates sampled
// event counters, and flushes 512-bit lines of encoded records to external
// memory through the shared bus — so tracing perturbs the application
// exactly as the hardware would.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/binned_series.hpp"
#include "hls/design.hpp"
#include "profiling/config.hpp"
#include "sim/hooks.hpp"
#include "sim/memory.hpp"
#include "trace/records.hpp"
#include "trace/streaming.hpp"
#include "trace/timed_trace.hpp"

namespace hlsprof::profiling {

class ProfilingUnit final : public sim::SimHooks {
 public:
  /// Reserves the trace region in `mem`. The unit must outlive the run.
  ProfilingUnit(const hls::Design& design, const ProfilingConfig& config,
                sim::ExternalMemory& mem);

  // ---- SimHooks ---------------------------------------------------------
  void on_state(thread_id_t tid, sim::ThreadState state, cycle_t t) override;
  void on_stall(thread_id_t tid, cycle_t t, cycle_t cycles) override;
  void on_compute(thread_id_t tid, long long int_ops, long long fp_ops,
                  cycle_t t0, cycle_t t1) override;
  void on_mem(thread_id_t tid, cycle_t t, std::uint32_t bytes,
              bool is_write) override;
  // Aggregate spans synthesized by the fast-forward tier (approx mode):
  // spread uniformly over [t0, t1) so sampled bandwidth/stall windows show
  // the same plateau the executed requests would have produced.
  void on_mem_span(thread_id_t tid, cycle_t t0, cycle_t t1,
                   std::uint64_t bytes_read,
                   std::uint64_t bytes_written) override;
  void on_stall_span(thread_id_t tid, cycle_t t0, cycle_t t1,
                     cycle_t cycles) override;
  void on_finish(cycle_t t) override;

  // ---- Streaming consumption ---------------------------------------------
  /// Install a sink that receives every flush burst (whole 512-bit lines)
  /// as it is written to external memory — the in-execution capture path.
  /// With a sink installed the DRAM trace region becomes a ring: bursts
  /// wrap around instead of overflowing, because the host has already
  /// consumed the lines, so the trace size is no longer bounded by
  /// trace_region_bytes (and post-run decode() is unavailable once the
  /// ring has wrapped). Pass nullptr to detach. The sink must stay alive
  /// until detached or the run finishes.
  void set_flush_sink(trace::FlushSink* sink) { sink_ = sink; }

  /// Largest single flush burst delivered so far, in bytes. A streaming
  /// consumer's peak residency is bounded by this (at most
  /// `buffer_lines * trace::kLineBytes`), independent of run length.
  std::size_t peak_burst_bytes() const { return peak_burst_bytes_; }

  // ---- Post-run access ----------------------------------------------------
  /// Read the raw trace back from simulated DRAM and decode it — the exact
  /// path a host application takes (paper §IV-B: "there they can later be
  /// accessed from the host for analysis"). Requires the trace to still be
  /// fully resident (i.e. the ring must not have wrapped).
  trace::DecodedTrace decode() const;

  /// Decode and reconstruct the timeline (batch path; core::Session uses
  /// the streaming pipeline instead).
  trace::TimedTrace timeline() const;

  addr_t trace_base() const { return trace_base_; }
  std::size_t trace_bytes_written() const { return trace_write_off_; }
  long long flush_bursts() const { return flush_bursts_; }
  long long state_records() const { return state_records_; }
  long long event_records() const { return event_records_; }
  cycle_t run_end() const { return run_end_; }
  const ProfilingConfig& config() const { return cfg_; }

 private:
  void append_state_record(cycle_t t);
  void maybe_flush(cycle_t t, bool force);
  void finalize_windows_up_to(cycle_t t);
  void note_time(cycle_t t);
  void emit_window(std::size_t w, cycle_t t_emit);

  const hls::Design& d_;
  ProfilingConfig cfg_;
  sim::ExternalMemory& mem_;
  int T_;

  addr_t trace_base_ = 0;
  std::size_t trace_write_off_ = 0;  // total bytes ever flushed
  std::size_t ring_bytes_ = 0;       // region size rounded down to lines

  trace::LineEncoder encoder_;
  std::size_t buffered_lines_ = 0;
  trace::FlushSink* sink_ = nullptr;
  std::size_t peak_burst_bytes_ = 0;

  // State tracker.
  std::vector<std::uint8_t> state_now_;  // 2-bit codes
  bool state_dirty_ = false;
  cycle_t last_state_record_t_ = kNoCycle;

  // Event counters, binned by sampling window. Indexed [metric][thread];
  // metrics: 0 stall, 1 int, 2 fp, 3 bytes_rd, 4 bytes_wr.
  static constexpr int kMetrics = 5;
  std::vector<BinnedSeries> bins_;  // kMetrics * T series
  std::size_t next_window_ = 0;     // first unemitted window index
  cycle_t high_water_ = 0;

  long long state_records_ = 0;
  long long event_records_ = 0;
  long long flush_bursts_ = 0;
  cycle_t run_end_ = 0;
  bool finished_ = false;
};

/// Convenience: run a simulator with a fresh profiling unit and return the
/// reconstructed timeline (used by tests and examples).
}  // namespace hlsprof::profiling
