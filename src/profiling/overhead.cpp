#include "profiling/overhead.hpp"

#include <algorithm>
#include <cmath>

namespace hlsprof::profiling {

ProfilingOverhead estimate_overhead(const hls::Design& design,
                                    const ProfilingConfig& config,
                                    const OverheadModel& m) {
  const auto& st = design.stats;
  const double T = double(st.num_threads);
  ProfilingOverhead out;
  OverheadBreakdown& parts = out.parts;
  double snoop_sources = 0;

  if (config.enable_states) {
    // Current-state register (2 bits/thread + 32-bit clock), record
    // assembly, buffer write pointer, and the on-chip line buffer.
    hls::Area a;
    a.ff = 2.0 * T + 32.0 + 24.0;
    a.alm = m.state_tracker_alm_base + m.state_tracker_alm_per_thread * T;
    a.bram_bits = double(config.buffer_lines) * 512.0;
    parts.state_tracker = a;
    snoop_sources += T;  // state bits from the controller & semaphore
  }
  if (config.enable_stall_events) {
    // One accumulator per thread; a snoop input per reordering stage
    // (every stage that can stall, paper §IV-B2a).
    hls::Area a;
    const double sources = std::max(1, st.total_reordering_stages);
    a.ff = m.ff_per_counter_bit * double(m.counter_bits) * T;
    a.alm = m.alm_per_snoop_source * sources + 30.0 * T;
    parts.stall_counters = a;
    snoop_sources += sources;
  }
  if (config.enable_compute_events) {
    // Activation snoops on every compute stage, with per-thread
    // aggregation of integer and FP activity (paper §IV-B2b).
    hls::Area a;
    const double sources =
        double(st.fp_op_instances + st.int_op_instances);
    a.ff = m.ff_per_counter_bit * double(m.counter_bits) * T * 2.0;
    a.alm = m.alm_per_snoop_source * 0.5 * sources + 30.0 * T;
    parts.compute_counters = a;
    snoop_sources += 0.5 * sources;
  }
  if (config.enable_memory_events) {
    // Counters at the central Avalon interface (paper §IV-B2c chose the
    // interface over per-operation counters to cut the footprint).
    hls::Area a;
    const double ports = double(st.bus_ports);
    a.ff = m.ff_per_counter_bit * double(m.counter_bits) * T * 2.0;
    a.alm = 30.0 * ports + 20.0 * T;
    parts.memory_counters = a;
    snoop_sources += ports;
  }
  if (config.enable_states || config.any_events()) {
    parts.flush_engine =
        hls::Area{m.flush_alm, m.flush_ff, 0.0, 0.0};
  }

  out.delta = parts.state_tracker;
  out.delta += parts.stall_counters;
  out.delta += parts.compute_counters;
  out.delta += parts.memory_counters;
  out.delta += parts.flush_engine;

  out.register_pct =
      design.area.ff > 0 ? 100.0 * out.delta.ff / design.area.ff : 0.0;
  out.alm_pct =
      design.area.alm > 0 ? 100.0 * out.delta.alm / design.area.alm : 0.0;

  (void)snoop_sources;
  const double mem_taps =
      double(st.mem_op_instances + st.total_reordering_stages);
  out.fmax_delta_mhz =
      std::min(m.fmax_cap, m.fmax_c0 + m.fmax_per_mem_tap * mem_taps);
  return out;
}

}  // namespace hlsprof::profiling
