#include "profiling/unit.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hlsprof::profiling {

using trace::EventKind;
using trace::EventRecord;

namespace {
EventKind metric_kind(int m) {
  switch (m) {
    case 0: return EventKind::stall_cycles;
    case 1: return EventKind::int_ops;
    case 2: return EventKind::fp_ops;
    case 3: return EventKind::bytes_read;
    case 4: return EventKind::bytes_written;
  }
  fail("bad metric index");
}
}  // namespace

ProfilingUnit::ProfilingUnit(const hls::Design& design,
                             const ProfilingConfig& config,
                             sim::ExternalMemory& mem)
    : d_(design),
      cfg_(config),
      mem_(mem),
      T_(design.kernel.num_threads),
      encoder_(design.kernel.num_threads) {
  HLSPROF_CHECK(cfg_.sampling_period > 0, "sampling period must be positive");
  HLSPROF_CHECK(cfg_.buffer_lines > cfg_.flush_headroom_lines,
                "buffer must be larger than the flush headroom");
  ring_bytes_ = (cfg_.trace_region_bytes / trace::kLineBytes) *
                trace::kLineBytes;
  HLSPROF_CHECK(ring_bytes_ >= trace::kLineBytes,
                "trace region must hold at least one 512-bit line");
  trace_base_ = mem_.allocate("profiling-trace", cfg_.trace_region_bytes);
  state_now_.assign(std::size_t(T_), 0 /*idle*/);
  bins_.reserve(std::size_t(kMetrics * T_));
  for (int i = 0; i < kMetrics * T_; ++i) {
    bins_.emplace_back(cfg_.sampling_period);
  }
}

void ProfilingUnit::note_time(cycle_t t) {
  high_water_ = std::max(high_water_, t);
  // Finalize windows a bounded lag behind the high-water mark:
  // late-arriving aggregates (concurrent-branch compute, request-side
  // skew the paper also accepts) are still accounted within the lag.
  const cycle_t lag = std::max(cfg_.finalize_lag, cfg_.sampling_period);
  if (cfg_.any_events() && high_water_ > lag) {
    finalize_windows_up_to(high_water_ - lag);
  }
}

void ProfilingUnit::on_state(thread_id_t tid, sim::ThreadState state,
                             cycle_t t) {
  if (!cfg_.enable_states) return;
  HLSPROF_CHECK(tid < thread_id_t(T_), "state for unknown thread");
  note_time(t);
  const auto code = std::uint8_t(state);
  if (state_now_[tid] == code && last_state_record_t_ != kNoCycle) return;
  // Coalesce multiple changes in the same cycle into one record: defer
  // emission until the clock advances (paper §IV-B1: "because the state
  // can change for multiple threads at once ... we record the current
  // state for all threads together").
  if (last_state_record_t_ != kNoCycle && last_state_record_t_ != t) {
    append_state_record(last_state_record_t_);
  }
  state_now_[tid] = code;
  last_state_record_t_ = t;
  state_dirty_ = true;
}

void ProfilingUnit::append_state_record(cycle_t t) {
  const int completed =
      encoder_.append_state(std::uint32_t(t & 0xffffffffULL), state_now_);
  buffered_lines_ += std::size_t(completed);
  ++state_records_;
  state_dirty_ = false;
  maybe_flush(t, /*force=*/false);
}

void ProfilingUnit::on_stall(thread_id_t tid, cycle_t t, cycle_t cycles) {
  if (!cfg_.enable_stall_events) return;
  note_time(t);
  bins_[std::size_t(0 * T_ + int(tid))].add(t, double(cycles));
}

void ProfilingUnit::on_compute(thread_id_t tid, long long int_ops,
                               long long fp_ops, cycle_t t0, cycle_t t1) {
  if (!cfg_.enable_compute_events) return;
  // Spans may cover many windows (fast-forwarded phases are unbounded
  // aggregates, unlike the bounded-lag skew note_time tolerates), and
  // several span hooks can target the same [t0, t1) back to back — so
  // only raise the high-water mark, never finalize: windows emitted
  // mid-sequence would silently drop the later spans' share. The next
  // point event (or on_finish) advances the window clock.
  if (int_ops > 0) {
    bins_[std::size_t(1 * T_ + int(tid))].add_range(t0, t1, double(int_ops));
  }
  if (fp_ops > 0) {
    bins_[std::size_t(2 * T_ + int(tid))].add_range(t0, t1, double(fp_ops));
  }
  high_water_ = std::max(high_water_, t1);
}

void ProfilingUnit::on_mem(thread_id_t tid, cycle_t t, std::uint32_t bytes,
                           bool is_write) {
  if (!cfg_.enable_memory_events) return;
  note_time(t);
  bins_[std::size_t((is_write ? 4 : 3) * T_ + int(tid))].add(t, double(bytes));
}

void ProfilingUnit::on_mem_span(thread_id_t tid, cycle_t t0, cycle_t t1,
                                std::uint64_t bytes_read,
                                std::uint64_t bytes_written) {
  if (!cfg_.enable_memory_events) return;
  // Deposit without finalizing windows (see on_compute).
  if (bytes_read > 0) {
    bins_[std::size_t(3 * T_ + int(tid))].add_range(t0, t1,
                                                    double(bytes_read));
  }
  if (bytes_written > 0) {
    bins_[std::size_t(4 * T_ + int(tid))].add_range(t0, t1,
                                                    double(bytes_written));
  }
  high_water_ = std::max(high_water_, t1);
}

void ProfilingUnit::on_stall_span(thread_id_t tid, cycle_t t0, cycle_t t1,
                                  cycle_t cycles) {
  if (!cfg_.enable_stall_events) return;
  // Deposit without finalizing windows (see on_compute).
  bins_[std::size_t(0 * T_ + int(tid))].add_range(t0, t1, double(cycles));
  high_water_ = std::max(high_water_, t1);
}

void ProfilingUnit::finalize_windows_up_to(cycle_t limit) {
  while ((cycle_t(next_window_) + 1) * cfg_.sampling_period <= limit) {
    emit_window(next_window_, (cycle_t(next_window_) + 1) * cfg_.sampling_period);
    ++next_window_;
  }
}

void ProfilingUnit::emit_window(std::size_t w, cycle_t t_emit) {
  bool any = false;
  for (int m = 0; m < kMetrics; ++m) {
    const bool enabled = (m == 0 && cfg_.enable_stall_events) ||
                         ((m == 1 || m == 2) && cfg_.enable_compute_events) ||
                         ((m == 3 || m == 4) && cfg_.enable_memory_events);
    if (!enabled) continue;
    for (int t = 0; t < T_; ++t) {
      const double raw = bins_[std::size_t(m * T_ + t)].bin(w);
      const auto v = std::uint64_t(std::llround(raw));
      if (v == 0) continue;  // zero-suppression keeps the trace compact
      EventRecord r;
      r.kind = metric_kind(m);
      r.thread = std::uint8_t(t);
      r.clock32 =
          std::uint32_t((cycle_t(w) * cfg_.sampling_period) & 0xffffffffULL);
      r.value = v;
      buffered_lines_ += std::size_t(encoder_.append_event(r));
      ++event_records_;
      any = true;
    }
  }
  if (any) maybe_flush(t_emit, /*force=*/false);
}

void ProfilingUnit::maybe_flush(cycle_t t, bool force) {
  const std::size_t fill = buffered_lines_ + (encoder_.line_open() ? 1 : 0);
  if (!force &&
      fill + std::size_t(cfg_.flush_headroom_lines) <
          std::size_t(cfg_.buffer_lines)) {
    return;
  }
  const std::vector<std::uint8_t> lines = encoder_.take_lines();
  if (lines.empty()) return;
  // Without a streaming consumer the whole trace must stay resident for
  // the post-run decode, so the region bounds the trace. With a sink the
  // region is a ring: the host already consumed every line, overwriting
  // old ones is fine, and trace size is unbounded by region size.
  if (sink_ == nullptr) {
    HLSPROF_CHECK(
        trace_write_off_ + lines.size() <= cfg_.trace_region_bytes,
        strf("profiling trace region overflow (%zu bytes): increase "
             "trace_region_bytes, the sampling period, or install a "
             "streaming flush sink",
             cfg_.trace_region_bytes));
  }
  // Burst-write the buffer to DRAM through the shared controller: this is
  // the tracer's perturbation of the application (paper §IV-B1). The ring
  // modulo is a no-op until the first wrap, so pre-wrap traffic (and
  // therefore timing) is identical with and without a sink.
  for (std::size_t off = 0; off < lines.size(); off += trace::kLineBytes) {
    const addr_t dst = trace_base_ + (trace_write_off_ + off) % ring_bytes_;
    mem_.write_bytes(dst, lines.data() + off, trace::kLineBytes);
    (void)mem_.access(t, dst, std::uint32_t(trace::kLineBytes),
                      /*is_write=*/true);
  }
  trace_write_off_ += lines.size();
  buffered_lines_ = 0;
  ++flush_bursts_;
  peak_burst_bytes_ = std::max(peak_burst_bytes_, lines.size());
  if (sink_ != nullptr) sink_->on_burst(lines.data(), lines.size());
}

void ProfilingUnit::on_finish(cycle_t t) {
  HLSPROF_CHECK(!finished_, "on_finish called twice");
  finished_ = true;
  run_end_ = t;
  high_water_ = std::max(high_water_, t);
  if (cfg_.enable_states && last_state_record_t_ != kNoCycle && state_dirty_) {
    append_state_record(last_state_record_t_);
  }
  if (cfg_.any_events()) finalize_windows_up_to(high_water_ + cfg_.sampling_period);
  maybe_flush(t, /*force=*/true);
}

trace::DecodedTrace ProfilingUnit::decode() const {
  HLSPROF_CHECK(trace_write_off_ <= ring_bytes_,
                "trace ring wrapped (a streaming sink consumed the lines); "
                "the post-run batch decode is unavailable");
  std::vector<std::uint8_t> buf(trace_write_off_);
  mem_.read_bytes(trace_base_, buf.data(), buf.size());
  return trace::decode_lines(buf.data(), buf.size(), T_);
}

trace::TimedTrace ProfilingUnit::timeline() const {
  HLSPROF_CHECK(finished_, "timeline() before the run finished");
  return trace::build_timed_trace(decode(), T_, run_end_,
                                  cfg_.sampling_period);
}

}  // namespace hlsprof::profiling
