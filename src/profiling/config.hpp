// Configuration of the embedded profiling unit (paper §IV).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace hlsprof::profiling {

struct ProfilingConfig {
  // Which collectors are synthesized (each adds hardware, §V-B notes the
  // counters contribute similarly to the overhead).
  bool enable_states = true;
  bool enable_stall_events = true;
  bool enable_compute_events = true;
  bool enable_memory_events = true;

  /// Sampling period for event counters in cycles (paper §IV-B2: user-
  /// adjustable; finer periods produce larger traces).
  cycle_t sampling_period = 8192;

  /// How far (in cycles) behind the newest observed timestamp a sampling
  /// window is closed and its records emitted. Late-arriving aggregates
  /// (e.g. compute that executed concurrently with a long prefetch) are
  /// still accepted within this lag; at least one sampling period is
  /// always kept open.
  cycle_t finalize_lag = 16384;

  /// On-chip trace buffer capacity in 512-bit lines; the buffer flushes to
  /// external memory when nearly full (paper §IV-B1).
  int buffer_lines = 64;
  /// Flush when this many lines are still free ("nearly full").
  int flush_headroom_lines = 4;

  /// DRAM region reserved for the trace.
  std::size_t trace_region_bytes = std::size_t{32} << 20;

  bool any_events() const {
    return enable_stall_events || enable_compute_events ||
           enable_memory_events;
  }
};

}  // namespace hlsprof::profiling
