#include "workloads/simple.hpp"

#include "common/error.hpp"

namespace hlsprof::workloads {

using ir::KernelBuilder;
using ir::MapDir;
using ir::Type;
using ir::Val;

ir::Kernel vecadd(std::int64_t n, int threads, int lanes) {
  HLSPROF_CHECK(n > 0 && n % (std::int64_t(threads) * lanes) == 0,
                "n must be a multiple of threads*lanes");
  KernelBuilder kb("vecadd", threads);
  auto x = kb.ptr_arg("x", Type::f32(), MapDir::to, n);
  auto y = kb.ptr_arg("y", Type::f32(), MapDir::to, n);
  auto z = kb.ptr_arg("z", Type::f32(), MapDir::from, n);
  Val tid = kb.thread_id();
  Val nt = kb.num_threads_val();
  Val nv = kb.c32(n);
  kb.for_loop("i", tid * std::int64_t(lanes), nv,
              nt * std::int64_t(lanes), [&](Val i) {
                Val a = kb.load(x, i, lanes);
                Val b = kb.load(y, i, lanes);
                kb.store(z, i, a + b);
              });
  return std::move(kb).finish();
}

ir::Kernel dot(std::int64_t n, int threads) {
  HLSPROF_CHECK(n > 0 && n % threads == 0, "n must be a multiple of threads");
  KernelBuilder kb("dot", threads);
  auto x = kb.ptr_arg("x", Type::f32(), MapDir::to, n);
  auto y = kb.ptr_arg("y", Type::f32(), MapDir::to, n);
  auto out = kb.ptr_arg("out", Type::f32(), MapDir::tofrom, 1);
  Val tid = kb.thread_id();
  Val nt = kb.num_threads_val();
  auto sum = kb.var_init("sum", kb.cf32(0.0));
  kb.for_loop("i", tid, kb.c32(n), nt, [&](Val i) {
    sum.set(sum.get() + kb.load(x, i) * kb.load(y, i));
  });
  kb.critical(0, [&] {
    Val zero = kb.c32(0);
    kb.store(out, zero, kb.load(out, zero) + sum.get());
  });
  return std::move(kb).finish();
}

ir::Kernel stencil3(std::int64_t n, int threads) {
  HLSPROF_CHECK(n >= 4, "stencil needs at least 4 points");
  KernelBuilder kb("stencil3", threads);
  auto x = kb.ptr_arg("x", Type::f32(), MapDir::to, n);
  auto y = kb.ptr_arg("y", Type::f32(), MapDir::from, n);
  Val tid = kb.thread_id();
  Val nt = kb.num_threads_val();
  Val third = kb.cf32(1.0 / 3.0);
  kb.for_loop("i", tid + std::int64_t(1), kb.c32(n - 1), nt, [&](Val i) {
    Val s = kb.load(x, i - std::int64_t(1)) + kb.load(x, i) +
            kb.load(x, i + std::int64_t(1));
    kb.store(y, i, s * third);
  });
  // Boundary copy-through, done by thread 0 only.
  kb.if_then(kb.eq(tid, kb.c32(0)), [&] {
    Val zero = kb.c32(0);
    kb.store(y, zero, kb.load(x, zero));
    Val last = kb.c32(n - 1);
    kb.store(y, last, kb.load(x, last));
  });
  return std::move(kb).finish();
}

ir::Kernel barrier_phases(std::int64_t n, int threads) {
  HLSPROF_CHECK(n > 0 && n % threads == 0, "n must be a multiple of threads");
  KernelBuilder kb("barrier_phases", threads);
  auto x = kb.ptr_arg("x", Type::f32(), MapDir::to, n);
  auto z = kb.ptr_arg("z", Type::f32(), MapDir::alloc, n);
  auto w = kb.ptr_arg("w", Type::f32(), MapDir::from, n);
  Val tid = kb.thread_id();
  Val nt = kb.num_threads_val();
  Val nv = kb.c32(n);
  kb.for_loop("p1", tid, nv, nt, [&](Val i) {
    kb.store(z, i, kb.load(x, i) * 2.0);
  });
  kb.barrier();
  kb.for_loop("p2", tid, nv, nt, [&](Val i) {
    Val j = (i + std::int64_t(1)) % nv;
    kb.store(w, i, kb.load(z, j));
  });
  return std::move(kb).finish();
}

ir::Kernel jacobi2d(int n, int iters, int threads) {
  HLSPROF_CHECK(n >= 4 && iters >= 1 && threads >= 1, "bad jacobi2d config");
  const std::int64_t nn = std::int64_t(n) * n;
  KernelBuilder kb("jacobi2d", threads);
  auto u = kb.ptr_arg("u", Type::f32(), MapDir::tofrom, nn);
  auto v = kb.ptr_arg("v", Type::f32(), MapDir::alloc, nn);
  Val tid = kb.thread_id();
  Val nt = kb.num_threads_val();
  Val nv = kb.c32(n);
  Val quarter = kb.cf32(0.25);

  // Seed the ping-pong buffer so boundary cells agree in both copies.
  kb.for_loop("seed", tid, kb.c32(nn), nt,
              [&](Val i) { kb.store(v, i, kb.load(u, i)); });
  kb.barrier();

  auto sweep = [&](ir::PtrHandle src, ir::PtrHandle dst) {
    kb.for_loop("i", tid + std::int64_t(1), kb.c32(n - 1), nt, [&](Val i) {
      Val row = i * nv;
      kb.for_loop("j", kb.c32(1), kb.c32(n - 1), kb.c32(1), [&](Val j) {
        Val center = row + j;
        Val sum = kb.load(src, center - std::int64_t(1)) +
                  kb.load(src, center + std::int64_t(1)) +
                  kb.load(src, center - std::int64_t(n)) +
                  kb.load(src, center + std::int64_t(n));
        kb.store(dst, center, sum * quarter);
      });
    });
  };

  kb.for_loop(
      "it", kb.c32(0), kb.c32(iters), kb.c32(1),
      [&](Val it) {
        Val even = kb.eq(it % std::int64_t(2), kb.c32(0));
        kb.if_then_else(even, [&] { sweep(u, v); }, [&] { sweep(v, u); });
        kb.barrier();
      },
      ir::LoopOpts{.pipeline = false});
  return std::move(kb).finish();
}

std::vector<float> jacobi2d_reference(const std::vector<float>& u0, int n,
                                      int iters) {
  std::vector<double> a(u0.begin(), u0.end());
  std::vector<double> b = a;
  for (int it = 0; it < iters; ++it) {
    for (int i = 1; i + 1 < n; ++i) {
      for (int j = 1; j + 1 < n; ++j) {
        b[std::size_t(i * n + j)] =
            0.25 * (a[std::size_t(i * n + j - 1)] +
                    a[std::size_t(i * n + j + 1)] +
                    a[std::size_t((i - 1) * n + j)] +
                    a[std::size_t((i + 1) * n + j)]);
      }
    }
    std::swap(a, b);
  }
  return {a.begin(), a.end()};
}

}  // namespace hlsprof::workloads
