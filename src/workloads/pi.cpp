#include "workloads/pi.hpp"

#include "common/error.hpp"

namespace hlsprof::workloads {

using ir::KernelBuilder;
using ir::MapDir;
using ir::Type;
using ir::Val;

ir::Kernel pi_series(const PiConfig& cfg) {
  HLSPROF_CHECK(cfg.steps > 0 && cfg.threads > 0, "bad pi config");
  HLSPROF_CHECK(cfg.unroll >= 1 && cfg.unroll <= ir::kMaxLanes,
                "unroll must fit the vector width");
  HLSPROF_CHECK(cfg.steps % cfg.threads == 0,
                "steps must be a multiple of the thread count");
  const int U = cfg.unroll;

  KernelBuilder kb("pi_series", cfg.threads);
  auto out = kb.ptr_arg("out", Type::f32(), MapDir::tofrom, 1);
  Val steps = kb.i32_arg("steps");
  Val inv_steps = kb.f32_arg("inv_steps");

  Val tid = kb.thread_id();
  Val nt = kb.num_threads_val();
  Val spt = steps / nt;                 // steps per thread
  Val start = tid * spt;

  // Loop-invariant vectors: per-lane offsets (j + 0.5) and broadcast step.
  Val lane_half = kb.broadcast(kb.cf32(0.5), U);
  for (int j = 0; j < U; ++j) {
    lane_half = kb.insert(lane_half, kb.cf32(double(j) + 0.5), j);
  }
  Val step_v = kb.broadcast(inv_steps, U);
  Val four_v = kb.broadcast(kb.cf32(4.0), U);
  Val one_v = kb.broadcast(kb.cf32(1.0), U);

  auto sum = kb.var_init("sum", kb.broadcast(kb.cf32(0.0), U));

  // Main loop: U-lane unrolled blocks (Fig. 10's BS_compute).
  Val spt_main = (spt / std::int64_t(U)) * std::int64_t(U);
  kb.for_loop(
      "i", kb.c32(0), spt_main, kb.c32(U),
      [&](Val i) {
        Val base = kb.cast(kb.broadcast(i + start, U), Type::f32(U));
        Val x = (base + lane_half) * step_v;  // (i+start+j+0.5) * 1/steps
        Val denom = one_v + x * x;
        sum.set(sum.get() + four_v / denom);
      },
      ir::LoopOpts{.pipeline = true});

  // Remainder loop for step counts that are not a multiple of the unroll.
  auto rem = kb.var_init("rem", kb.cf32(0.0));
  kb.for_loop(
      "ir", spt_main, spt, kb.c32(1),
      [&](Val i) {
        Val x = (kb.cast(i + start, Type::f32()) + kb.cf32(0.5)) * inv_steps;
        rem.set(rem.get() + kb.cf32(4.0) / (kb.cf32(1.0) + x * x));
      },
      ir::LoopOpts{.pipeline = true});

  // Sum-reduction of the per-thread partial result under a critical
  // section (Fig. 10).
  kb.critical(0, [&] {
    Val partial = kb.reduce_add(sum.get()) + rem.get();
    Val zero = kb.c32(0);
    Val prev = kb.load(out, zero);
    kb.store(out, zero, prev + partial);
  });
  return std::move(kb).finish();
}

double pi_reference(std::int64_t steps) {
  const double inv = 1.0 / double(steps);
  double sum = 0.0;
  for (std::int64_t i = 0; i < steps; ++i) {
    const double x = (double(i) + 0.5) * inv;
    sum += 4.0 / (1.0 + x * x);
  }
  return sum * inv;
}

double pi_peak_gflops(const PiConfig& cfg, int recurrence_ii,
                      int flops_per_lane_iter, double fmax_mhz) {
  HLSPROF_CHECK(recurrence_ii > 0, "recurrence II must be positive");
  const double flops_per_cycle = double(cfg.unroll) *
                                 double(flops_per_lane_iter) /
                                 double(recurrence_ii) * double(cfg.threads);
  return flops_per_cycle * fmax_mhz * 1e6 / 1e9;
}

}  // namespace hlsprof::workloads
