// Host-side reference implementations and input generators used by tests,
// examples, and benches to validate the simulated accelerators.
#pragma once

#include <cstdint>
#include <vector>

namespace hlsprof::workloads {

/// Double-precision reference C = A * B for dim x dim row-major matrices.
std::vector<float> gemm_reference(const std::vector<float>& a,
                                  const std::vector<float>& b, int dim);

/// Deterministic pseudo-random matrix with entries in [-1, 1).
std::vector<float> random_matrix(int dim, std::uint64_t seed);

/// Deterministic pseudo-random vector with entries in [lo, hi).
std::vector<float> random_vector(std::int64_t n, std::uint64_t seed,
                                 float lo = -1.0f, float hi = 1.0f);

/// Max |a-b| / max(1, |b|) over two equal-sized vectors.
double max_rel_error(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace hlsprof::workloads
