// The paper's GEMM case study (§V-C): five versions of single-precision
// matrix multiplication, each the next step of the optimization journey
// the Paraver traces guide (Figs. 3-5):
//   v1 naive          — k-loop split across threads, critical update of C
//   v2 no-critical    — threads own output elements, no serialization
//   v3 vectorized     — 128-bit vector loads of A (partial vectorization)
//   v4 blocked        — sub-matrices staged in local (BRAM) memory
//   v5 double-buffered— prefetch of the next block overlaps compute
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/builder.hpp"

namespace hlsprof::workloads {

struct GemmConfig {
  int dim = 256;       // square matrix dimension
  int threads = 8;     // hardware threads (paper uses 8)
  int vector_len = 4;  // 128-bit vectors of f32 (paper §V-C)
  int block = 8;       // block edge for v4/v5 (must be multiple of vector_len)
};

ir::Kernel gemm_naive(const GemmConfig& cfg);
ir::Kernel gemm_no_critical(const GemmConfig& cfg);
ir::Kernel gemm_vectorized(const GemmConfig& cfg);
ir::Kernel gemm_blocked(const GemmConfig& cfg);
ir::Kernel gemm_double_buffered(const GemmConfig& cfg);

/// Extension beyond the paper's five versions: the blocked GEMM with tile
/// loads issued as preloader DMA bursts (the Fig. 1 preloader block, which
/// the paper describes but does not evaluate separately). Used by the
/// preloader ablation.
ir::Kernel gemm_preloaded(const GemmConfig& cfg);

/// All five versions in the paper's order, with the paper's names.
struct GemmVersion {
  std::string name;
  std::function<ir::Kernel(const GemmConfig&)> build;
};
const std::vector<GemmVersion>& gemm_versions();

}  // namespace hlsprof::workloads
