// Small kernels used by the quickstart example and the test suite:
// elementwise vector add, dot product (critical reduction), a 3-point
// stencil, and a barrier-synchronized two-phase kernel.
#pragma once

#include "ir/builder.hpp"

namespace hlsprof::workloads {

/// z[i] = x[i] + y[i], i strided across threads. `lanes` > 1 vectorizes.
ir::Kernel vecadd(std::int64_t n, int threads, int lanes = 1);

/// out[0] = sum_i x[i]*y[i]; per-thread partials merged under critical.
ir::Kernel dot(std::int64_t n, int threads);

/// y[i] = (x[i-1] + x[i] + x[i+1]) / 3 for i in [1, n-1); y[0], y[n-1]
/// copied through.
ir::Kernel stencil3(std::int64_t n, int threads);

/// Two-phase kernel with a barrier: phase 1 writes z[i] = x[i] * 2, the
/// barrier, then phase 2 reads a neighbour written by another thread:
/// w[i] = z[(i + 1) mod n]. Wrong without the barrier.
ir::Kernel barrier_phases(std::int64_t n, int threads);

/// 2D Jacobi relaxation (5-point stencil), `iters` sweeps over an n x n
/// grid, rows distributed across threads, barrier-synchronized ping-pong
/// between `u` (tofrom) and `v` (alloc). The result is in `u` when `iters`
/// is even, otherwise in `v` — run_jacobi2d_reference mirrors this. One of
/// the HPC kernel classes the paper's introduction motivates (stencils on
/// FPGAs [3]).
ir::Kernel jacobi2d(int n, int iters, int threads);

/// Host-side double-precision reference: `iters` sweeps in place over a
/// copy of `u`; returns the grid in the same buffer parity the kernel
/// leaves it (i.e. the final state of `u` after an even number of sweeps).
std::vector<float> jacobi2d_reference(const std::vector<float>& u, int n,
                                      int iters);

}  // namespace hlsprof::workloads
