#include "workloads/reference.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hlsprof::workloads {

std::vector<float> gemm_reference(const std::vector<float>& a,
                                  const std::vector<float>& b, int dim) {
  HLSPROF_CHECK(a.size() >= std::size_t(dim) * std::size_t(dim) &&
                    b.size() >= std::size_t(dim) * std::size_t(dim),
                "reference inputs too small");
  std::vector<float> c(std::size_t(dim) * std::size_t(dim), 0.0f);
  for (int i = 0; i < dim; ++i) {
    for (int j = 0; j < dim; ++j) {
      double sum = 0.0;
      for (int k = 0; k < dim; ++k) {
        sum += double(a[std::size_t(i * dim + k)]) *
               double(b[std::size_t(k * dim + j)]);
      }
      c[std::size_t(i * dim + j)] = float(sum);
    }
  }
  return c;
}

std::vector<float> random_matrix(int dim, std::uint64_t seed) {
  return random_vector(std::int64_t(dim) * dim, seed);
}

std::vector<float> random_vector(std::int64_t n, std::uint64_t seed, float lo,
                                 float hi) {
  SplitMix64 rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.next_float(lo, hi);
  return v;
}

double max_rel_error(const std::vector<float>& a,
                     const std::vector<float>& b) {
  HLSPROF_CHECK(a.size() == b.size(), "size mismatch in max_rel_error");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = std::max(1.0, std::fabs(double(b[i])));
    worst = std::max(worst, std::fabs(double(a[i]) - double(b[i])) / denom);
  }
  return worst;
}

}  // namespace hlsprof::workloads
