// The paper's second case study (§V-D, Fig. 10): the infinite series for
// pi, sum 4/(1+x^2), distributed across threads with a critical-section
// reduction. Single precision on purpose — the paper's numerical-
// instability observation depends on f32 accumulation.
#pragma once

#include "ir/builder.hpp"

namespace hlsprof::workloads {

struct PiConfig {
  std::int64_t steps = 1000000;
  int threads = 8;
  int unroll = 16;  // lanes of independent accumulators (Fig. 10's BS_compute)
};

/// Kernel args: "steps" (i32), "inv_steps" (f32, precomputed 1/steps), and
/// "out" (f32[1], tofrom) receiving the reduced sum.
ir::Kernel pi_series(const PiConfig& cfg);

/// Host-side double-precision reference of the same series.
double pi_reference(std::int64_t steps);

/// Analytic peak GFLOP/s of the pi accelerator: flops per iteration over
/// the recurrence-II cycles, across all threads, at `fmax_mhz`. Used for
/// the paper's 15e9-iteration extrapolation (the paper, too, only projects
/// that point — f32 is already unstable there).
double pi_peak_gflops(const PiConfig& cfg, int recurrence_ii,
                      int flops_per_lane_iter, double fmax_mhz);

}  // namespace hlsprof::workloads
