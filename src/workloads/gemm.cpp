#include "workloads/gemm.hpp"

#include "common/error.hpp"

namespace hlsprof::workloads {

using ir::KernelBuilder;
using ir::LocalHandle;
using ir::MapDir;
using ir::PtrHandle;
using ir::Type;
using ir::Val;

namespace {

struct GemmArgs {
  PtrHandle A, B, C;
  Val dim, tid, nt;
};

GemmArgs common_args(KernelBuilder& kb, const GemmConfig& cfg) {
  const std::int64_t n = cfg.dim;
  GemmArgs a;
  a.A = kb.ptr_arg("A", Type::f32(), MapDir::to, n * n);
  a.B = kb.ptr_arg("B", Type::f32(), MapDir::to, n * n);
  a.C = kb.ptr_arg("C", Type::f32(), MapDir::tofrom, n * n);
  a.dim = kb.c32(n);
  a.tid = kb.thread_id();
  a.nt = kb.num_threads_val();
  return a;
}

void check_cfg(const GemmConfig& cfg, bool blocked) {
  HLSPROF_CHECK(cfg.dim > 0 && cfg.threads > 0, "bad GEMM config");
  HLSPROF_CHECK(cfg.dim % cfg.threads == 0,
                "dim must be a multiple of the thread count");
  HLSPROF_CHECK(cfg.vector_len >= 1 && cfg.vector_len <= ir::kMaxLanes &&
                    cfg.dim % cfg.vector_len == 0,
                "dim must be a multiple of vector_len");
  if (blocked) {
    HLSPROF_CHECK(cfg.block > 0 && cfg.block % cfg.vector_len == 0 &&
                      cfg.dim % cfg.block == 0,
                  "dim must be a multiple of block, and block a multiple of "
                  "vector_len");
  }
}

}  // namespace

// ---- v1: naive (paper Fig. 3) ------------------------------------------
// All threads cooperate on every output element: the k loop is split
// across threads and the partial sums are merged under a critical section.
ir::Kernel gemm_naive(const GemmConfig& cfg) {
  check_cfg(cfg, false);
  KernelBuilder kb("gemm_v1_naive", cfg.threads);
  GemmArgs g = common_args(kb, cfg);

  kb.for_loop("i", kb.c32(0), g.dim, kb.c32(1), [&](Val i) {
    kb.for_loop("j", kb.c32(0), g.dim, kb.c32(1), [&](Val j) {
      auto sum = kb.var_init("sum", kb.cf32(0.0));
      Val row = i * g.dim;
      kb.for_loop("k", g.tid, g.dim, g.nt, [&](Val k) {
        Val a = kb.load(g.A, row + k);
        Val b = kb.load(g.B, k * g.dim + j);
        sum.set(sum.get() + a * b);
      });
      kb.critical(0, [&] {
        Val idx = row + j;
        Val c = kb.load(g.C, idx);
        kb.store(g.C, idx, c + sum.get());
      });
    });
  });
  return std::move(kb).finish();
}

// ---- v2: no critical sections -------------------------------------------
// Threads own disjoint output columns, so the update of C needs no lock
// (paper §V-C "No Critical Sections": a minor redistribution of work that
// removes all critical/spin states).
ir::Kernel gemm_no_critical(const GemmConfig& cfg) {
  check_cfg(cfg, false);
  KernelBuilder kb("gemm_v2_no_critical", cfg.threads);
  GemmArgs g = common_args(kb, cfg);

  kb.for_loop("i", kb.c32(0), g.dim, kb.c32(1), [&](Val i) {
    kb.for_loop("j", g.tid, g.dim, g.nt, [&](Val j) {
      auto sum = kb.var_init("sum", kb.cf32(0.0));
      Val row = i * g.dim;
      kb.for_loop("k", kb.c32(0), g.dim, kb.c32(1), [&](Val k) {
        Val a = kb.load(g.A, row + k);
        Val b = kb.load(g.B, k * g.dim + j);
        sum.set(sum.get() + a * b);
      });
      kb.store(g.C, row + j, sum.get());
    });
  });
  return std::move(kb).finish();
}

// ---- v3: partial vectorization (paper Fig. 4) ---------------------------
// 128-bit vector loads of A; B stays scalar (it would need a transpose).
// As in the paper's Fig. 4, the *outer* i loop is now distributed across
// threads: the threads march through j/k roughly in lockstep and their B
// accesses hit the same DRAM rows, which — together with the wider A
// accesses — is where the improved memory throughput comes from.
// vector_len independent scalar accumulators keep the recurrence II low.
ir::Kernel gemm_vectorized(const GemmConfig& cfg) {
  check_cfg(cfg, false);
  const int VL = cfg.vector_len;
  KernelBuilder kb("gemm_v3_vectorized", cfg.threads);
  GemmArgs g = common_args(kb, cfg);

  kb.for_loop("i", g.tid, g.dim, g.nt, [&](Val i) {
    kb.for_loop("j", kb.c32(0), g.dim, kb.c32(1), [&](Val j) {
      std::vector<ir::VarHandle> acc;
      for (int v = 0; v < VL; ++v) {
        acc.push_back(kb.var_init("acc" + std::to_string(v), kb.cf32(0.0)));
      }
      Val row = i * g.dim;
      kb.for_loop("k", kb.c32(0), g.dim, kb.c32(std::int64_t(VL)),
                  [&](Val k) {
                    Val va = kb.load(g.A, row + k, VL);
                    for (int v = 0; v < VL; ++v) {
                      Val b = kb.load(g.B, (k + std::int64_t(v)) * g.dim + j);
                      acc[std::size_t(v)].set(
                          acc[std::size_t(v)].get() + kb.extract(va, v) * b);
                    }
                  });
      Val sum = acc[0].get();
      for (int v = 1; v < VL; ++v) sum = sum + acc[std::size_t(v)].get();
      kb.store(g.C, row + j, sum);
    });
  });
  return std::move(kb).finish();
}

namespace {

/// Emit the block-load loop shared by v4/v5: copy a block x block tile of
/// `src` starting at (r0, c0) into `dst_local` at `dst_off`, `load_lanes`
/// elements per external load. The paper's blocked version (Fig. 8) loads
/// element-wise; only the double-buffered rewrite (Fig. 5) uses VECTOR
/// loads — pass 1 or cfg.vector_len accordingly.
void emit_block_load(KernelBuilder& kb, const GemmConfig& cfg, PtrHandle src,
                     Val dim, Val r0, Val c0, LocalHandle dst, Val dst_off,
                     int load_lanes) {
  const int B = cfg.block;
  HLSPROF_CHECK(B % load_lanes == 0, "block must be a multiple of load width");
  kb.for_loop(
      "ld_m", kb.c32(0), kb.c32(B), kb.c32(1),
      [&](Val m) {
        Val src_row = (r0 + m) * dim + c0;
        Val dst_row = dst_off + m * std::int64_t(B);
        for (int v = 0; v < B / load_lanes; ++v) {
          Val x =
              kb.load(src, src_row + std::int64_t(v * load_lanes), load_lanes);
          kb.store_local(dst, dst_row + std::int64_t(v * load_lanes), x);
        }
      },
      ir::LoopOpts{.pipeline = true, .trip_hint = B});
}

/// Emit the on-block compute loop shared by v4/v5: C_local += A_tile x
/// B_tile, fully unrolled in y (vector groups) and v.
void emit_block_compute(KernelBuilder& kb, const GemmConfig& cfg,
                        LocalHandle a_local, LocalHandle b_local,
                        LocalHandle c_local, Val a_off, Val b_off) {
  const int B = cfg.block;
  const int VL = cfg.vector_len;
  kb.for_loop(
      "mm_x", kb.c32(0), kb.c32(B), kb.c32(1),
      [&](Val x) {
        Val crow = x * std::int64_t(B);
        Val arow = a_off + crow;
        for (int yb = 0; yb < B / VL; ++yb) {
          Val accv = kb.load_local(c_local, crow + std::int64_t(yb * VL), VL);
          for (int v = 0; v < B; ++v) {
            Val a_s = kb.load_local(a_local, arow + std::int64_t(v));
            Val bv = kb.load_local(
                b_local, b_off + std::int64_t(v * B + yb * VL), VL);
            accv = accv + kb.broadcast(a_s, VL) * bv;
          }
          kb.store_local(c_local, crow + std::int64_t(yb * VL), accv);
        }
      },
      ir::LoopOpts{.pipeline = true, .trip_hint = B});
}

}  // namespace

// ---- v4: blocked (paper §V-C "Blocked version") ---------------------------
// Stages block x block tiles of A and B in local memory, computes on the
// tile, and writes the finished C tile back — trading external bandwidth
// for on-chip bandwidth. The load and compute phases are distinct, which
// is exactly what the paper's Fig. 8 trace shows.
ir::Kernel gemm_blocked(const GemmConfig& cfg) {
  check_cfg(cfg, true);
  const int B = cfg.block;
  const int VL = cfg.vector_len;
  KernelBuilder kb("gemm_v4_blocked", cfg.threads);
  GemmArgs g = common_args(kb, cfg);
  LocalHandle a_loc = kb.local_array("A_local", ir::Scalar::f32, B * B);
  LocalHandle b_loc = kb.local_array("B_local", ir::Scalar::f32, B * B);
  LocalHandle c_loc = kb.local_array("C_local", ir::Scalar::f32, B * B);

  Val bs = kb.c32(B);
  kb.for_loop("ib", g.tid * std::int64_t(B), g.dim, g.nt * std::int64_t(B),
              [&](Val ib) {
    kb.for_loop("jb", kb.c32(0), g.dim, bs, [&](Val jb) {
      // Zero the C tile.
      kb.for_loop("cz", kb.c32(0), kb.c32(B * B), kb.c32(VL), [&](Val z) {
        kb.store_local(c_loc, z, kb.broadcast(kb.cf32(0.0), VL));
      });
      kb.for_loop("kb", kb.c32(0), g.dim, bs, [&](Val kbv) {
        emit_block_load(kb, cfg, g.A, g.dim, ib, kbv, a_loc, kb.c32(0),
                        /*load_lanes=*/1);
        emit_block_load(kb, cfg, g.B, g.dim, kbv, jb, b_loc, kb.c32(0),
                        /*load_lanes=*/1);
        emit_block_compute(kb, cfg, a_loc, b_loc, c_loc, kb.c32(0),
                           kb.c32(0));
      });
      // Write the finished tile back.
      kb.for_loop(
          "wb_m", kb.c32(0), bs, kb.c32(1),
          [&](Val m) {
            Val dst = (ib + m) * g.dim + jb;
            Val src = m * std::int64_t(B);
            for (int v = 0; v < B / VL; ++v) {
              Val x = kb.load_local(c_loc, src + std::int64_t(v * VL), VL);
              kb.store(g.C, dst + std::int64_t(v * VL), x);
            }
          },
          ir::LoopOpts{.pipeline = true, .trip_hint = B});
    });
  });
  return std::move(kb).finish();
}

// ---- v5: double buffering (paper Fig. 5 / Fig. 9) --------------------------
// Two tile buffers: while the datapath computes on tile `phase-1`, the
// loads of tile `phase` run concurrently (independent inner loops execute
// in parallel in the dataflow graph). The k loop runs one extra iteration:
// the first only prefetches, the last only computes (Fig. 9's segment D).
ir::Kernel gemm_double_buffered(const GemmConfig& cfg) {
  check_cfg(cfg, true);
  const int B = cfg.block;
  const int VL = cfg.vector_len;
  const std::int64_t BB = std::int64_t(B) * B;
  KernelBuilder kb("gemm_v5_double_buffered", cfg.threads);
  GemmArgs g = common_args(kb, cfg);
  LocalHandle a_loc = kb.local_array("A_local", ir::Scalar::f32, 2 * BB);
  LocalHandle b_loc = kb.local_array("B_local", ir::Scalar::f32, 2 * BB);
  LocalHandle c_loc = kb.local_array("C_local", ir::Scalar::f32, BB);

  Val bs = kb.c32(B);
  kb.for_loop("ib", g.tid * std::int64_t(B), g.dim, g.nt * std::int64_t(B),
              [&](Val ib) {
    kb.for_loop("jb", kb.c32(0), g.dim, bs, [&](Val jb) {
      kb.for_loop("cz", kb.c32(0), kb.c32(B * B), kb.c32(VL), [&](Val z) {
        kb.store_local(c_loc, z, kb.broadcast(kb.cf32(0.0), VL));
      });
      // One extra k iteration: iteration p prefetches tile p and computes
      // tile p-1.
      kb.for_loop("kb", kb.c32(0), g.dim + std::int64_t(B), bs, [&](Val kbv) {
        Val phase = kbv / std::int64_t(B);
        Val cur_off = (phase % 2) * BB;
        Val prev_off = ((phase + std::int64_t(1)) % 2) * BB;
        Val do_load = kbv < g.dim;
        Val do_compute = kb.gt(phase, kb.c32(0));
        kb.concurrent(
            {[&] {
               kb.if_then(do_load, [&] {
                 emit_block_load(kb, cfg, g.A, g.dim, ib, kbv, a_loc,
                                 cur_off, cfg.vector_len);
                 emit_block_load(kb, cfg, g.B, g.dim, kbv, jb, b_loc,
                                 cur_off, cfg.vector_len);
               });
             },
             [&] {
               kb.if_then(do_compute, [&] {
                 emit_block_compute(kb, cfg, a_loc, b_loc, c_loc, prev_off,
                                    prev_off);
               });
             }},
            /*user_asserted_independent=*/true);
      });
      kb.for_loop(
          "wb_m", kb.c32(0), bs, kb.c32(1),
          [&](Val m) {
            Val dst = (ib + m) * g.dim + jb;
            Val src = m * std::int64_t(B);
            for (int v = 0; v < B / VL; ++v) {
              Val x = kb.load_local(c_loc, src + std::int64_t(v * VL), VL);
              kb.store(g.C, dst + std::int64_t(v * VL), x);
            }
          },
          ir::LoopOpts{.pipeline = true, .trip_hint = B});
    });
  });
  return std::move(kb).finish();
}

// ---- extension: blocked GEMM with preloader DMA tile loads ----------------
ir::Kernel gemm_preloaded(const GemmConfig& cfg) {
  check_cfg(cfg, true);
  const int B = cfg.block;
  const int VL = cfg.vector_len;
  KernelBuilder kb("gemm_v4p_preloaded", cfg.threads);
  GemmArgs g = common_args(kb, cfg);
  LocalHandle a_loc = kb.local_array("A_local", ir::Scalar::f32, B * B);
  LocalHandle b_loc = kb.local_array("B_local", ir::Scalar::f32, B * B);
  LocalHandle c_loc = kb.local_array("C_local", ir::Scalar::f32, B * B);

  Val bs = kb.c32(B);
  kb.for_loop("ib", g.tid * std::int64_t(B), g.dim, g.nt * std::int64_t(B),
              [&](Val ib) {
    kb.for_loop("jb", kb.c32(0), g.dim, bs, [&](Val jb) {
      kb.for_loop("cz", kb.c32(0), kb.c32(B * B), kb.c32(VL), [&](Val z) {
        kb.store_local(c_loc, z, kb.broadcast(kb.cf32(0.0), VL));
      });
      kb.for_loop("kb", kb.c32(0), g.dim, bs, [&](Val kbv) {
        // Tile loads as DMA bursts: one preload per tile row, issued by
        // the preloader block rather than element-wise thread-port loads.
        kb.for_loop(
            "pl", kb.c32(0), bs, kb.c32(1),
            [&](Val m) {
              Val row = m * std::int64_t(B);
              kb.preload(a_loc, row, g.A, (ib + m) * g.dim + kbv, bs);
              kb.preload(b_loc, row, g.B, (kbv + m) * g.dim + jb, bs);
            },
            ir::LoopOpts{.trip_hint = B});
        emit_block_compute(kb, cfg, a_loc, b_loc, c_loc, kb.c32(0),
                           kb.c32(0));
      });
      kb.for_loop(
          "wb_m", kb.c32(0), bs, kb.c32(1),
          [&](Val m) {
            Val dst = (ib + m) * g.dim + jb;
            Val src = m * std::int64_t(B);
            for (int v = 0; v < B / VL; ++v) {
              Val x = kb.load_local(c_loc, src + std::int64_t(v * VL), VL);
              kb.store(g.C, dst + std::int64_t(v * VL), x);
            }
          },
          ir::LoopOpts{.trip_hint = B});
    });
  });
  return std::move(kb).finish();
}

const std::vector<GemmVersion>& gemm_versions() {
  static const std::vector<GemmVersion> versions = {
      {"Naive", gemm_naive},
      {"No Critical Sections", gemm_no_critical},
      {"Partial Vectorization", gemm_vectorized},
      {"Blocked", gemm_blocked},
      {"Double Buffering", gemm_double_buffered},
  };
  return versions;
}

}  // namespace hlsprof::workloads
