// hlsprof-run — execute a sweep manifest through the batch runner.
//
//   hlsprof-run sweep.manifest [--workers=N] [--out=PREFIX] [--seed=S]
//                              [--canonical] [--json] [--quiet]
//
//   --workers=N    override the manifest's worker count (0 = one per core)
//   --out=PREFIX   write PREFIX.json + PREFIX.csv (overrides manifest `out`)
//   --seed=S       override the manifest's batch seed
//   --canonical    deterministic report: omit wall-clock + per-job cache_hit
//   --json         print the JSON report to stdout
//   --quiet        suppress the summary table
//
// Exit status: 0 if every job finished ok, 1 if any job failed or timed
// out, 2 on usage/manifest errors.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "runner/runner.hpp"

using namespace hlsprof;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <manifest> [--workers=N] [--out=PREFIX] [--seed=S]"
               " [--canonical] [--json] [--quiet]\n",
               argv0);
  return 2;
}

bool parse_flag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path;
  std::string out_override;
  std::string value;
  int workers_override = -1;
  long long seed_override = -1;
  bool canonical = false;
  bool print_json = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--canonical") {
      canonical = true;
    } else if (arg == "--json") {
      print_json = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (parse_flag(arg, "workers", &value)) {
      workers_override = std::atoi(value.c_str());
    } else if (parse_flag(arg, "seed", &value)) {
      seed_override = std::atoll(value.c_str());
    } else if (parse_flag(arg, "out", &value)) {
      out_override = value;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (manifest_path.empty()) return usage(argv[0]);

  runner::ManifestRun run;
  try {
    run = runner::load_manifest(manifest_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
    return 2;
  }

  if (workers_override >= 0) run.options.workers = workers_override;
  if (seed_override >= 0) run.options.seed = std::uint64_t(seed_override);
  if (!out_override.empty()) run.out_prefix = out_override;

  const runner::BatchResult result = run.batch.run(run.options);

  runner::ReportOptions ropts;
  ropts.canonical = canonical;
  ropts.label = run.label;

  if (!quiet) {
    std::fputs(runner::summary_table(result).c_str(), stdout);
    std::printf("jobs: %zu ok=%d failed=%d timed_out=%d | cache %lld hits / "
                "%lld misses | %d workers, %.0f ms\n",
                result.jobs.size(), result.count(runner::JobStatus::ok),
                result.count(runner::JobStatus::failed),
                result.count(runner::JobStatus::timed_out), result.cache_hits,
                result.cache_misses, result.workers, result.wall_ms);
  }
  if (print_json) {
    std::fputs(runner::report_json(result, ropts).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  if (!run.out_prefix.empty()) {
    try {
      const std::string path =
          runner::write_report(result, run.out_prefix, ropts);
      if (!quiet)
        std::printf("report written to %s (+ .csv)\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return 2;
    }
  }
  return result.all_ok() ? 0 : 1;
}
