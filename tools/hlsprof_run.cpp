// hlsprof-run — execute a sweep manifest through the batch runner.
//
//   hlsprof-run sweep.manifest [--workers=N] [--out=PREFIX] [--seed=S]
//                              [--cache-dir=DIR] [--cache-max-bytes=N]
//                              [--approx-trace]
//                              [--canonical] [--json] [--quiet] [--progress]
//                              [--live[=state|metrics]] [--live-lines]
//                              [--no-color] [--shards=N] [--shard-strategy=S]
//                              [--straggler-factor=F] [--connect=SOCKETS]
//                              [--telemetry-out=FILE] [--chrome-trace=FILE]
//                              [--version] [--help]
//
//   --workers=N          override the manifest's worker count (0 = one per
//                        core)
//   --out=PREFIX         write PREFIX.json + PREFIX.csv (overrides manifest
//                        `out`)
//   --seed=S             override the manifest's batch seed
//   --cache-dir=DIR      persist compiled designs in DIR (created if
//                        missing) so repeated runs skip recompilation;
//                        default off. See docs/CACHING.md.
//   --cache-max-bytes=N  LRU size cap for --cache-dir (evicted when the
//                        cache is opened); 0 = unbounded
//   --approx-trace       approximate fast-forward mode (like manifest key
//                        `approx_trace = on`): steady-state memory-bound
//                        loop phases are jumped analytically, functional
//                        verification is disabled, and trace records over
//                        skipped spans are synthesized aggregates. See
//                        docs/PERF.md for the tolerance contract.
//   --canonical          deterministic report: omit wall-clock + per-job
//                        cache_hit
//   --json               print the JSON report to stdout
//   --quiet              suppress the summary table
//   --progress           print one line per finished job as it completes
//                        (machine-parsable; the shard coordinator's feed)
//   --live[=MODE]        live display on stderr while the batch runs:
//                        `state` (default) draws the in-place ASCII thread
//                        timeline of the running job, `metrics` a one-line
//                        totals ticker. Auto-disabled when stderr is not a
//                        TTY. In shard mode shows the per-shard fleet view.
//                        Canonical report and trace bytes are identical
//                        with it on or off. See docs/LIVE.md.
//   --live-lines         print one machine-parsable `##hlsprof-live`
//                        totals line per finished job (the fleet view's
//                        feed; works without a TTY)
//   --no-color           disable ANSI colors in the live display
//                        (NO_COLOR in the environment does the same)
//   --shards=N           split the manifest's jobs across N hlsprof-run
//                        child processes and merge their reports; the
//                        merged canonical output is byte-identical to a
//                        single-process run. Implies --canonical. See
//                        docs/SHARDING.md.
//   --shard-strategy=S   block | round_robin (default round_robin)
//   --straggler-factor=F re-dispatch a shard's outstanding jobs when its
//                        runtime exceeds F x the median finished-shard
//                        time (default 3; 0 disables speculation)
//   --connect=SOCKETS    comma-separated hlsprof-serve sockets: submit
//                        shards to running daemons (round-robin) instead
//                        of spawning child processes; implies shard mode
//   --telemetry-out=FILE enable host telemetry; write the metrics snapshot
//                        JSON (schema "hlsprof-telemetry") to FILE
//   --chrome-trace=FILE  enable host telemetry; write a Chrome trace-event
//                        JSON (open in Perfetto / chrome://tracing)
//   --version            print the build stamp and exit
//
// Telemetry is a sidecar: canonical report bytes are identical with it on
// or off. With --out and telemetry enabled, PREFIX.telemetry.json is also
// written next to the report.
//
// Exit status: 0 if every job finished ok, 1 if any job failed or timed
// out, 2 on usage/manifest errors (including unknown or malformed flags),
// 4 when --connect cannot reach a daemon at all (missing socket file or
// connection refused — the message names the socket path).
#include <unistd.h>

#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <string>

#include "common/argparse.hpp"
#include "common/build_info.hpp"
#include "common/strings.hpp"
#include "live/reporter.hpp"
#include "paraver/ascii.hpp"
#include "runner/runner.hpp"
#include "runner/shard.hpp"
#include "serve/client.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

using namespace hlsprof;

namespace {

int usage(const ArgParser& parser, std::FILE* to) {
  std::fputs("usage: hlsprof-run <manifest> [flags]\n", to);
  std::fputs(parser.help_text().c_str(), to);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_override;
  std::string cache_dir;
  std::string telemetry_out;
  std::string chrome_trace;
  std::string shard_strategy = "round_robin";
  std::string straggler_factor_text;
  std::string connect_text;
  std::string shard_telemetry_prefix;
  long long workers_override = -1;
  long long seed_override = -1;
  long long cache_max_bytes = -1;
  long long shards = 1;
  std::string live_value = "state";
  bool approx_trace = false;
  bool canonical = false;
  bool print_json = false;
  bool quiet = false;
  bool progress = false;
  bool live_flag = false;
  bool live_lines = false;
  bool no_color = false;
  bool version = false;
  bool help = false;

  ArgParser parser;
  parser
      .option_int("workers", &workers_override,
                  "override the manifest's worker count (0 = one per core)")
      .option("out", &out_override,
              "write VALUE.json + VALUE.csv (overrides manifest `out`)")
      .option_int("seed", &seed_override, "override the manifest's batch seed")
      .option("cache-dir", &cache_dir,
              "persist compiled designs in VALUE so repeated runs skip "
              "recompilation (default off)")
      .option_int("cache-max-bytes", &cache_max_bytes,
                  "LRU size cap for --cache-dir, evicted on open "
                  "(0 = unbounded)")
      .flag("approx-trace", &approx_trace,
            "approximate fast-forward mode: jump steady memory-bound loop "
            "phases analytically (disables functional verification)")
      .flag("canonical", &canonical,
            "deterministic report: omit wall-clock + per-job cache_hit")
      .flag("json", &print_json, "print the JSON report to stdout")
      .flag("quiet", &quiet, "suppress the summary table")
      .flag("progress", &progress,
            "print one machine-parsable line per finished job")
      .option_optional("live", &live_value, &live_flag,
                       "live stderr display: state (timeline, default) or "
                       "metrics (ticker); auto-off when stderr is no TTY")
      .flag("live-lines", &live_lines,
            "print one machine-parsable ##hlsprof-live totals line per "
            "finished job")
      .flag("no-color", &no_color, "disable ANSI colors in the live display")
      .option_int("shards", &shards,
                  "split jobs across N child processes and merge the "
                  "reports (implies --canonical)")
      .option("shard-strategy", &shard_strategy,
              "block | round_robin (default round_robin)")
      .option("straggler-factor", &straggler_factor_text,
              "re-dispatch a shard past F x the median shard time "
              "(default 3, 0 = off)")
      .option("connect", &connect_text,
              "comma-separated hlsprof-serve sockets to submit shards to "
              "(daemon mode)")
      .option("shard-telemetry-prefix", &shard_telemetry_prefix,
              "each shard child writes its telemetry snapshot to "
              "VALUE<shard-id>.json")
      .option("telemetry-out", &telemetry_out,
              "enable telemetry; write the metrics snapshot JSON here")
      .option("chrome-trace", &chrome_trace,
              "enable telemetry; write Chrome trace-event JSON here")
      .flag("version", &version, "print the build stamp and exit")
      .flag("help", &help, "show this help");

  if (!parser.parse(argc, argv)) {
    std::fprintf(stderr, "hlsprof-run: %s\n", parser.error().c_str());
    return usage(parser, stderr);
  }
  if (help) {
    usage(parser, stdout);
    return 0;
  }
  if (version) {
    std::printf("%s\n", build_info_string().c_str());
    return 0;
  }
  if (parser.positionals().size() != 1) {
    std::fprintf(stderr, "hlsprof-run: expected exactly one manifest path\n");
    return usage(parser, stderr);
  }
  const std::string manifest_path = parser.positionals().front();

  live::LiveMode live_mode = live::LiveMode::off;
  if (live_flag && !live::parse_live_mode(live_value, &live_mode)) {
    std::fprintf(stderr, "hlsprof-run: --live must be 'state' or 'metrics'\n");
    return usage(parser, stderr);
  }
  // The human display needs a terminal; the machine channel does not.
  const bool live_tty = ::isatty(::fileno(stderr)) != 0;
  const bool live_display = live_mode != live::LiveMode::off && live_tty &&
                            !quiet;
  const bool live_color =
      !no_color && paraver::color_enabled_for(stderr);

  auto& telemetry_reg = telemetry::Registry::global();
  const bool telemetry_on = !telemetry_out.empty() || !chrome_trace.empty();
  if (telemetry_on) telemetry_reg.enable(true);

  const bool shard_mode = shards > 1 || !connect_text.empty();

  runner::BatchResult result;
  runner::ReportOptions ropts;
  std::string out_prefix;
  bool coordinator_wrote_chrome = false;

  if (shard_mode) {
    runner::ShardOptions sopts;
    sopts.shards = int(shards < 1 ? 1 : shards);
    try {
      sopts.strategy = runner::shard_strategy_from_name(shard_strategy);
      if (!straggler_factor_text.empty()) {
        std::size_t used = 0;
        sopts.straggler_factor = std::stod(straggler_factor_text, &used);
        if (used != straggler_factor_text.size() ||
            sopts.straggler_factor < 0) {
          throw Error("--straggler-factor must be a non-negative number");
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return usage(parser, stderr);
    }
    sopts.cache_dir = cache_dir;
    if (cache_max_bytes > 0) {
      sopts.cache_max_bytes = std::uint64_t(cache_max_bytes);
    }
    sopts.workers_per_shard = workers_override > 0 ? int(workers_override) : 0;
    sopts.seed_override = seed_override;
    sopts.approx_trace = approx_trace;
    sopts.quiet = quiet;
    sopts.child_telemetry_prefix = shard_telemetry_prefix;
    if (!connect_text.empty()) {
      for (const std::string& s : split(connect_text, ',')) {
        const std::string sock = trim(s);
        if (!sock.empty()) sopts.connect.push_back(sock);
      }
      // Pre-flight: an unreachable daemon is an environment error with
      // its own exit code (4), not something to burn the re-dispatch
      // budget on mid-run.
      try {
        for (const std::string& sock : sopts.connect) {
          serve::Client probe(sock);
        }
      } catch (const serve::ConnectError& e) {
        std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
        return 4;
      }
      sopts.submit = [](const std::string& socket,
                        const std::string& manifest_text,
                        const std::string& client_name) {
        serve::Client client(socket);
        const serve::Response r = client.submit(manifest_text, client_name);
        if (!r.ok) {
          fail("daemon at " + socket + " rejected the shard (" + r.error +
               "): " + r.message);
        }
        return r.report;
      };
    }
    if (!canonical && !quiet) {
      std::fprintf(stderr,
                   "hlsprof-run: note: --shards implies --canonical (merged "
                   "reports are deterministic by construction)\n");
    }

    // Process-mode fleets get ONE merged Perfetto file (coordinator +
    // every shard child, tracks namespaced per shard); daemon telemetry
    // belongs to the daemon, so daemon mode keeps the classic
    // coordinator-only trace written below.
    const bool merged_chrome = !chrome_trace.empty() && sopts.connect.empty();
    if (merged_chrome) sopts.chrome_trace_out = chrome_trace;

    // Fleet live view: children emit ##hlsprof-live totals lines on their
    // progress pipes; the coordinator aggregates them per shard.
    std::unique_ptr<live::FleetView> fleet;
    std::mutex fleet_line_mu;
    if ((live_mode != live::LiveMode::off || live_lines) &&
        sopts.connect.empty()) {
      sopts.child_live_lines = true;
      live::FleetOptions fopts;
      if (live_display) {
        fopts.display = stderr;
        fopts.in_place = true;
      }
      fleet = std::make_unique<live::FleetView>(sopts.shards, fopts);
      live::FleetView* fleet_ptr = fleet.get();
      const bool emit_fleet_lines = live_lines;
      sopts.on_child_line = [fleet_ptr, emit_fleet_lines, &fleet_line_mu](
                                int shard, const std::string& line) {
        live::LiveLine l;
        if (!live::parse_live_line(line, &l)) return;
        fleet_ptr->update(shard, l);
        if (emit_fleet_lines) {
          const std::string out =
              live::format_live_line(fleet_ptr->merged()) + "\n";
          std::lock_guard<std::mutex> lock(fleet_line_mu);
          std::fwrite(out.data(), 1, out.size(), stdout);
          std::fflush(stdout);
        }
      };
      if (live_display) {
        // The in-place fleet frame replaces per-job chatter; dropping the
        // progress batches keeps the frame intact.
        sopts.emit_progress = [](const std::string&) {};
      }
    }

    runner::ShardResult sharded;
    try {
      sharded = runner::run_sharded(manifest_path, sopts);
    } catch (const serve::ConnectError& e) {
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return 4;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return 2;
    }
    if (fleet) fleet->finish();
    coordinator_wrote_chrome = merged_chrome;
    if (!quiet) {
      std::fprintf(stderr,
                   "hlsprof-run: %d shards (%d re-dispatched, %d duplicate "
                   "jobs dropped)\n",
                   sharded.shards_launched, sharded.shards_redispatched,
                   sharded.duplicate_jobs);
    }
    result = std::move(sharded.merged);
    ropts.canonical = true;
    ropts.label = sharded.label;
    out_prefix = !out_override.empty() ? out_override : sharded.out_prefix;
  } else {
    runner::ManifestRun run;
    try {
      run = runner::load_manifest(manifest_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return 2;
    }

    if (workers_override >= 0) run.options.workers = int(workers_override);
    if (seed_override >= 0) run.options.seed = std::uint64_t(seed_override);
    if (approx_trace) runner::apply_approx_trace(run);
    if (!out_override.empty()) run.out_prefix = out_override;
    if (!cache_dir.empty()) run.options.cache_dir = cache_dir;
    if (cache_max_bytes >= 0) {
      run.options.cache_max_bytes = std::uint64_t(cache_max_bytes);
    }
    std::mutex progress_mu;
    if (progress) {
      run.options.on_job_done = [&progress_mu](const runner::JobResult& j) {
        // One flushed line per job so a piped consumer (the shard
        // coordinator) sees completions as they happen.
        std::lock_guard<std::mutex> lock(progress_mu);
        std::fputs((runner::format_progress_line(j) + "\n").c_str(), stdout);
        std::fflush(stdout);
      };
    }

    // Live observer: a pure tee off the decoded record stream — the
    // canonical report and trace bytes are identical with it on or off.
    std::unique_ptr<live::BatchLiveReporter> reporter;
    if (live_mode != live::LiveMode::off || live_lines) {
      live::ReporterOptions lopts;
      lopts.mode = live_mode;
      if (live_display) {
        lopts.display = stderr;
        lopts.color = live_color;
      }
      if (live_lines) lopts.line_out = stdout;
      // Under `select` (a shard child) only the selected slice runs.
      lopts.jobs_total = run.options.select.empty()
                             ? run.batch.size()
                             : run.options.select.size();
      reporter = std::make_unique<live::BatchLiveReporter>(lopts);
      run.options.observer = reporter.get();
    }

    try {
      result = run.batch.run(run.options);
    } catch (const std::exception& e) {
      // Runner-internal failure (e.g. the cache directory cannot be
      // created) — a configuration error, unlike per-job failures, which
      // land in the report.
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return 2;
    }
    if (reporter) reporter->finish();
    ropts.canonical = canonical;
    ropts.label = run.label;
    out_prefix = run.out_prefix;
  }

  if (!quiet) {
    std::fputs(runner::summary_table(result).c_str(), stdout);
    std::printf("jobs: %zu ok=%d failed=%d timed_out=%d | cache %lld hits / "
                "%lld misses | %d workers, %.0f ms\n",
                result.jobs.size(), result.count(runner::JobStatus::ok),
                result.count(runner::JobStatus::failed),
                result.count(runner::JobStatus::timed_out), result.cache_hits,
                result.cache_misses, result.workers, result.wall_ms);
  }
  if (print_json) {
    std::fputs(runner::report_json(result, ropts).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  if (!out_prefix.empty()) {
    try {
      const std::string path =
          runner::write_report(result, out_prefix, ropts);
      if (!quiet)
        std::printf("report written to %s (+ .csv)\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return 2;
    }
  }

  if (telemetry_on) {
    try {
      const telemetry::Snapshot snap = telemetry_reg.snapshot();
      if (!telemetry_out.empty()) {
        telemetry::write_text_file(telemetry_out,
                                   telemetry::snapshot_json(snap) + "\n");
        if (!quiet)
          std::printf("telemetry snapshot written to %s\n",
                      telemetry_out.c_str());
      }
      if (!chrome_trace.empty()) {
        if (coordinator_wrote_chrome) {
          // The shard coordinator already merged every child trace plus
          // its own into the one fleet file at this path.
          if (!quiet)
            std::printf("merged fleet chrome trace written to %s "
                        "(open in Perfetto)\n",
                        chrome_trace.c_str());
        } else {
          telemetry::write_text_file(
              chrome_trace, telemetry::chrome_trace_json(snap) + "\n");
          if (!quiet)
            std::printf("chrome trace written to %s (open in Perfetto)\n",
                        chrome_trace.c_str());
        }
      }
      // Non-canonical sidecar next to the batch report, so archived runs
      // keep their host metrics without touching the canonical bytes.
      if (!out_prefix.empty()) {
        telemetry::write_text_file(out_prefix + ".telemetry.json",
                                   telemetry::snapshot_json(snap) + "\n");
      }
      if (!quiet) std::fputs(telemetry::summary_text(snap).c_str(), stdout);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hlsprof-run: %s\n", e.what());
      return 2;
    }
  }
  return result.all_ok() ? 0 : 1;
}
