// hlsprof-serve — long-lived profiling daemon plus its command-line
// client. One binary, two modes:
//
// Daemon (default):
//   hlsprof-serve --socket=PATH [--workers=N] [--dispatchers=N]
//                 [--queue-capacity=N] [--client-quota=N]
//                 [--cache-dir=DIR] [--cache-max-bytes=N]
//                 [--telemetry-out=FILE] [--quiet]
//
//   Listens on a Unix-domain socket, executes manifest submissions from
//   concurrent clients on one resident worker pool and one persistent
//   design cache, and answers `metrics` requests with the live telemetry
//   snapshot. SIGTERM/SIGINT (or a `shutdown` request) drains: admission
//   closes, every admitted job finishes and is answered, the telemetry
//   sidecar (--telemetry-out) is flushed, the socket file is removed,
//   and the process exits 0. See docs/SERVING.md.
//
// Client (any of --submit/--metrics/--ping/--shutdown selects it):
//   hlsprof-serve --socket=PATH --submit=MANIFEST [--client=NAME]
//                 [--priority=N] [--report-out=FILE] [--watch] [--quiet]
//   hlsprof-serve --socket=PATH --metrics [--json]
//   hlsprof-serve --socket=PATH --ping
//   hlsprof-serve --socket=PATH --shutdown
//
//   --submit sends the manifest text and prints (or writes, with
//   --report-out) the returned canonical report — byte-identical to
//   `hlsprof-run MANIFEST --canonical --json` for the same manifest.
//   With --watch the daemon streams one progress event per finished job
//   and the client prints "[done/jobs] name status" lines to stderr as
//   they arrive; the report bytes on stdout are unchanged.
//   --metrics prints a human-readable aligned table; --json switches to
//   the raw "hlsprof-telemetry" snapshot JSON.
//
// Exit status: 0 ok; 1 job failures or a connection dropped mid-request;
// 2 usage errors; 3 the daemon rejected the request (queue_full /
// client_quota / draining — the structured error is printed to stderr);
// 4 cannot connect to the daemon at all (missing socket file or nothing
// listening on it — the message names the socket path), so scripts can
// tell "no daemon" apart from "daemon said no".
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "common/argparse.hpp"
#include "common/build_info.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

using namespace hlsprof;

namespace {

int usage(const ArgParser& parser, std::FILE* to) {
  std::fputs("usage: hlsprof-serve --socket=PATH [flags]\n", to);
  std::fputs(parser.help_text().c_str(), to);
  return 2;
}

/// The serving loop's drain trigger, reachable from the signal handler.
int g_drain_fd = -1;

void on_terminate(int) {
  if (g_drain_fd >= 0) {
    const char byte = 1;
    (void)!::write(g_drain_fd, &byte, 1);
  }
}

int run_daemon(serve::ServerOptions options, const std::string& telemetry_out,
               bool quiet) {
  serve::Server server(std::move(options));
  g_drain_fd = server.drain_fd();
  std::signal(SIGTERM, on_terminate);
  std::signal(SIGINT, on_terminate);
  if (!quiet) {
    std::fprintf(stderr, "hlsprof-serve: listening on %s\n",
                 server.socket_path().c_str());
  }
  server.serve();
  g_drain_fd = -1;
  if (!telemetry_out.empty()) {
    telemetry::write_text_file(
        telemetry_out,
        telemetry::snapshot_json(telemetry::Registry::global()) + "\n");
  }
  if (!quiet) {
    const auto s = server.admission().stats();
    std::fprintf(stderr,
                 "hlsprof-serve: drained (admitted %llu, finished %llu, "
                 "rejected %llu)\n",
                 (unsigned long long)s.admitted,
                 (unsigned long long)s.finished,
                 (unsigned long long)(s.rejected_full + s.rejected_quota +
                                      s.rejected_draining));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string submit_path;
  std::string client_name = "cli";
  std::string report_out;
  std::string cache_dir;
  std::string telemetry_out;
  long long workers = 0;
  long long dispatchers = 2;
  long long queue_capacity = 64;
  long long client_quota = 0;
  long long cache_max_bytes = 0;
  long long priority = 0;
  bool metrics = false;
  bool metrics_json = false;
  bool watch = false;
  bool ping = false;
  bool shutdown = false;
  bool quiet = false;
  bool version = false;
  bool help = false;

  ArgParser parser;
  parser
      .option("socket", &socket_path, "Unix-domain socket path (required)")
      .option_int("workers", &workers,
                  "resident pool size (0 = one per core)")
      .option_int("dispatchers", &dispatchers,
                  "requests executed concurrently (default 2)")
      .option_int("queue-capacity", &queue_capacity,
                  "max requests waiting for a dispatcher (default 64)")
      .option_int("client-quota", &client_quota,
                  "max in-flight requests per client (0 = unlimited)")
      .option("cache-dir", &cache_dir,
              "persistent design-cache directory (default off)")
      .option_int("cache-max-bytes", &cache_max_bytes,
                  "LRU size cap for --cache-dir (0 = unbounded)")
      .option("telemetry-out", &telemetry_out,
              "write the final metrics snapshot here on drain")
      .option("submit", &submit_path,
              "client mode: submit this manifest file")
      .option("client", &client_name,
              "client mode: client name for quotas/fairness (default cli)")
      .option_int("priority", &priority,
                  "client mode: submission priority (higher runs first)")
      .option("report-out", &report_out,
              "client mode: write the returned report here instead of stdout")
      .flag("watch", &watch,
            "client mode: stream per-job progress lines to stderr while "
            "the submission runs")
      .flag("metrics", &metrics, "client mode: fetch the telemetry snapshot")
      .flag("json", &metrics_json,
            "client mode: print --metrics as raw snapshot JSON instead of "
            "the aligned table")
      .flag("ping", &ping, "client mode: health-check the daemon")
      .flag("shutdown", &shutdown, "client mode: ask the daemon to drain")
      .flag("quiet", &quiet, "suppress progress chatter")
      .flag("version", &version, "print the build stamp and exit")
      .flag("help", &help, "show this help");

  if (!parser.parse(argc, argv)) {
    std::fprintf(stderr, "hlsprof-serve: %s\n", parser.error().c_str());
    return usage(parser, stderr);
  }
  if (help) {
    usage(parser, stdout);
    return 0;
  }
  if (version) {
    std::printf("%s\n", build_info_string().c_str());
    return 0;
  }
  if (!parser.positionals().empty()) {
    std::fprintf(stderr, "hlsprof-serve: unexpected positional argument\n");
    return usage(parser, stderr);
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "hlsprof-serve: --socket is required\n");
    return usage(parser, stderr);
  }

  const bool client_mode =
      !submit_path.empty() || metrics || ping || shutdown;
  try {
    if (!client_mode) {
      serve::ServerOptions options;
      options.socket_path = socket_path;
      options.workers = int(workers);
      options.dispatchers = int(dispatchers);
      if (queue_capacity < 0) queue_capacity = 0;
      options.admission.queue_capacity = std::size_t(queue_capacity);
      options.admission.per_client_inflight = int(client_quota);
      options.cache_dir = cache_dir;
      options.cache_max_bytes = std::uint64_t(cache_max_bytes);
      return run_daemon(std::move(options), telemetry_out, quiet);
    }

    serve::Client client(socket_path);
    if (ping) {
      const serve::Response r = client.ping();
      if (!quiet) std::printf("pong: %s\n", r.build.c_str());
      return r.ok ? 0 : 1;
    }
    if (metrics) {
      const serve::Response r = client.metrics();
      if (!r.ok) {
        std::fprintf(stderr, "hlsprof-serve: %s: %s\n", r.error.c_str(),
                     r.message.c_str());
        return 3;
      }
      if (metrics_json) {
        std::fputs(r.metrics.c_str(), stdout);
        std::fputc('\n', stdout);
      } else {
        std::fputs(telemetry::metrics_table(r.metrics).c_str(), stdout);
      }
      return 0;
    }
    if (shutdown) {
      const serve::Response r = client.shutdown();
      if (!quiet && r.draining) {
        std::fprintf(stderr, "hlsprof-serve: daemon is draining\n");
      }
      return r.ok ? 0 : 1;
    }

    std::ifstream f(submit_path);
    if (!f.good()) {
      std::fprintf(stderr, "hlsprof-serve: cannot open manifest: %s\n",
                   submit_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    serve::Response r;
    if (watch) {
      r = client.submit_watch(
          ss.str(),
          [quiet](const serve::Response& ev) {
            if (quiet) return;
            std::fprintf(stderr, "[%d/%d] %s %s\n", ev.done, ev.jobs,
                         ev.name.c_str(), ev.status.c_str());
          },
          client_name, int(priority));
    } else {
      r = client.submit(ss.str(), client_name, int(priority));
    }
    if (!r.ok) {
      std::fprintf(stderr, "hlsprof-serve: rejected (%s): %s\n",
                   r.error.c_str(), r.message.c_str());
      return 3;
    }
    if (!report_out.empty()) {
      telemetry::write_text_file(report_out, r.report + "\n");
      if (!quiet) {
        std::fprintf(stderr, "report written to %s\n", report_out.c_str());
      }
    } else {
      std::fputs(r.report.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    if (!quiet) {
      std::fprintf(stderr, "label=%s jobs=%d ok=%d\n", r.label.c_str(),
                   r.jobs, r.ok_jobs);
    }
    return r.ok_jobs == r.jobs ? 0 : 1;
  } catch (const serve::ConnectError& e) {
    std::fprintf(stderr, "hlsprof-serve: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hlsprof-serve: %s\n", e.what());
    return 1;
  }
}
